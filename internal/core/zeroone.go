package core

import (
	"sort"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
	"sortnets/internal/perm"
)

// This file packages the two classical bridges the paper builds on:
// Knuth's zero-one principle and Floyd's cover correspondence between
// binary and permutation behaviour. Both are stated as checkable
// functions so the test suite can verify them on arbitrary networks
// rather than trusting them.

// IsSorterBinary reports whether the network sorts all 2ⁿ binary
// inputs — by the zero-one principle, whether it is a sorter.
func IsSorterBinary(w *network.Network) bool { return w.SortsAllBinary() }

// IsSorterPermutations reports whether the network sorts all n!
// permutations, by exhaustive sweep. Exponentially slower than
// IsSorterBinary; it exists as the ground-truth side of the zero-one
// principle for small n.
func IsSorterPermutations(w *network.Network) bool {
	it := perm.AllHeap(w.N)
	buf := make([]int, w.N)
	for {
		p, ok := it.Next()
		if !ok {
			return true
		}
		copy(buf, p)
		w.ApplyInPlace(buf)
		if !sort.IntsAreSorted(buf) {
			return false
		}
	}
}

// ZeroOnePrincipleHolds cross-checks the two sides on one network.
// It always returns true for correct implementations; the test suite
// calls it on random networks as an executable proof sketch.
func ZeroOnePrincipleHolds(w *network.Network) bool {
	return IsSorterBinary(w) == IsSorterPermutations(w)
}

// OutputsOnCover applies the network to every element of a
// permutation's cover and returns the outputs, which by Floyd's lemma
// (quoted in Section 2) are exactly the cover of the network's output
// on the permutation itself. FloydCorrespondenceHolds checks that.
func OutputsOnCover(w *network.Network, p perm.P) []bitvec.Vec {
	cover := p.Cover()
	out := make([]bitvec.Vec, len(cover))
	for i, v := range cover {
		out[i] = w.ApplyVec(v)
	}
	return out
}

// FloydCorrespondenceHolds verifies {H(x) : x ∈ cover(π)} equals
// cover(H(π)) elementwise by threshold level.
func FloydCorrespondenceHolds(w *network.Network, p perm.P) bool {
	outPerm := w.Apply(p)
	op, err := perm.FromValues(outPerm)
	if err != nil {
		return false
	}
	want := op.Cover()
	got := OutputsOnCover(w, p)
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// SelectsBinary reports whether the network (k,n)-selects the single
// binary input v: outputs 1..k must equal the k smallest bits of v in
// order, i.e. the first k bits of sorted(v).
func SelectsBinary(w *network.Network, k int, v bitvec.Vec) bool {
	out := w.ApplyVec(v)
	want := v.Sorted()
	mask := uint64(1)<<uint(k) - 1
	return out.Bits&mask == want.Bits&mask
}

// IsSelectorBinary reports whether the network is a (k,n)-selector on
// all binary inputs. Monotonicity (Theorem 2.4) lifts this to
// arbitrary inputs, mirroring the zero-one principle.
func IsSelectorBinary(w *network.Network, k int) bool {
	it := bitvec.All(w.N)
	for {
		v, ok := it.Next()
		if !ok {
			return true
		}
		if !SelectsBinary(w, k, v) {
			return false
		}
	}
}

// MergesBinary reports whether the network correctly merges the single
// input v = σ₁σ₂; inputs whose halves are not sorted are outside the
// merger contract and vacuously accepted.
func MergesBinary(w *network.Network, v bitvec.Vec) bool {
	h := w.N / 2
	if !v.Slice(0, h).IsSorted() || !v.Slice(h, w.N).IsSorted() {
		return true
	}
	return w.ApplyVec(v).IsSorted()
}

// IsMergerBinary reports whether the network is an (n/2,n/2)-merger on
// all binary inputs.
func IsMergerBinary(w *network.Network) bool {
	h := w.N / 2
	for i := 0; i <= h; i++ {
		for j := 0; j <= h; j++ {
			v := bitvec.Concat(bitvec.SortedWithOnes(h, i), bitvec.SortedWithOnes(h, j))
			if !w.ApplyVec(v).IsSorted() {
				return false
			}
		}
	}
	return true
}
