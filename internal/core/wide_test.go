package core

import (
	"testing"
)

func TestMergerWideTestsMatchNarrow(t *testing.T) {
	for n := 2; n <= 14; n += 4 {
		narrow := map[string]bool{}
		it := MergerBinaryTests(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			narrow[v.String()] = true
		}
		count := 0
		wit := MergerWideTests(n)
		for {
			v, ok := wit.Next()
			if !ok {
				break
			}
			count++
			if !narrow[v.String()] {
				t.Fatalf("n=%d: wide test %s missing from narrow set", n, v)
			}
		}
		if count != len(narrow) {
			t.Errorf("n=%d: wide %d vs narrow %d", n, count, len(narrow))
		}
	}
}

func TestSelectorWideTestsMatchNarrow(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{6, 1}, {8, 2}, {10, 3}, {5, 5}} {
		narrow := map[string]bool{}
		it := SelectorBinaryTests(tc.n, tc.k)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			narrow[v.String()] = true
		}
		count := 0
		wit := SelectorWideTests(tc.n, tc.k)
		for {
			v, ok := wit.Next()
			if !ok {
				break
			}
			count++
			if !narrow[v.String()] {
				t.Fatalf("n=%d k=%d: wide test %s missing from narrow set", tc.n, tc.k, v)
			}
			if v.Zeros() > tc.k || v.IsSorted() {
				t.Fatalf("n=%d k=%d: invalid wide test %s", tc.n, tc.k, v)
			}
		}
		if count != len(narrow) {
			t.Errorf("n=%d k=%d: wide %d vs narrow %d", tc.n, tc.k, count, len(narrow))
		}
	}
}

func TestCountWide(t *testing.T) {
	if got := CountWide(MergerWideTests(8)); got != 16 {
		t.Errorf("CountWide = %d, want 16", got)
	}
}

func TestWidePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("odd merger", func() { MergerWideTests(7) })
	mustPanic("selector k=0", func() { SelectorWideTests(8, 0) })
	mustPanic("selector k>n", func() { SelectorWideTests(8, 9) })
}

func TestSelectorWideTestsBeyond64Lines(t *testing.T) {
	// Spot-check the wide-only regime: n=70, k=1 has exactly 69
	// tests (70 single-zero strings minus the sorted 0·1⁶⁹).
	count := 0
	it := SelectorWideTests(70, 1)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		count++
		if v.N() != 70 || v.Zeros() != 1 {
			t.Fatalf("bad test %s", v)
		}
	}
	if count != 69 {
		t.Errorf("n=70 k=1: %d tests, want 69", count)
	}
}
