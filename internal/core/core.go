// Package core implements the central results of Chung & Ravikumar,
// "Bounds on the Size of Test Sets for Sorting and Related Networks"
// (ICPP 1987 / Discrete Mathematics 81, 1990): the exact minimal test
// sets for deciding whether an arbitrary comparator network is a
// sorter, a (k,n)-selector, or an (n/2,n/2)-merger, for both 0/1 and
// permutation inputs, together with the Lemma 2.1 adversarial
// construction that proves the bounds tight.
//
// The six minimal test sets and their exact sizes:
//
//	Sorter,   0/1:   all non-sorted strings            2ⁿ − n − 1
//	Sorter,   perm:  SCD chain family                  C(n,⌊n/2⌋) − 1
//	Selector, 0/1:   non-sorted strings, ≤ k zeros     Σᵢ₌₀..k C(n,i) − k − 1
//	Selector, perm:  truncated SCD chain family        C(n,min(k,⌊n/2⌋)) − 1
//	Merger,   0/1:   sorted halves, unsorted whole     n²/4
//	Merger,   perm:  the τᵢ family                     n/2
//
// Lower bounds are witnessed constructively: AlmostSorter(σ) yields a
// network that sorts everything except σ, so no test set may omit any
// non-sorted σ; closure formulas (comb package) and chain covers
// (chains package) give the matching upper bounds. Every claim is
// machine-checked in the tests and the experiment harness.
package core

import (
	"fmt"

	"sortnets/internal/bitvec"
	"sortnets/internal/chains"
	"sortnets/internal/perm"
)

// SorterBinaryTests streams the minimal 0/1 test set for the sorting
// property: every non-sorted string of length n, in increasing word
// order. |T| = 2ⁿ − n − 1 (Theorem 2.2(i)); by Lemma 2.1 no smaller
// set works, and by the zero-one principle no larger set is needed.
func SorterBinaryTests(n int) bitvec.Iterator {
	return bitvec.NotSorted(bitvec.All(n))
}

// SelectorBinaryTests streams the minimal 0/1 test set T⁺ₖ for the
// (k,n)-selector property: every non-sorted string with at most k
// zeros. |T| = Σᵢ₌₀..k C(n,i) − (k+1) (Theorem 2.4(i)). Sufficiency
// follows from monotonicity: if H (k,n)-selects every σ′ with exactly
// k zeros, then for any σ ≥ σ′ the first k outputs are forced to 0.
func SelectorBinaryTests(n, k int) bitvec.Iterator {
	if k < 1 || k > n {
		panic(fmt.Sprintf("core: selector arity k=%d out of range 1..%d", k, n))
	}
	return bitvec.NotSorted(bitvec.MaxZeros(n, k))
}

// MergerBinaryTests streams the minimal 0/1 test set for the
// (n/2,n/2)-merger property: every concatenation σ₁σ₂ of two sorted
// halves that is not itself sorted — σ₁ must contain a 1 and σ₂ a 0.
// |T| = n²/4 (Theorem 2.5(i)).
func MergerBinaryTests(n int) bitvec.Iterator {
	if n%2 != 0 || n < 2 {
		panic(fmt.Sprintf("core: merger tests need even n ≥ 2, got %d", n))
	}
	return &mergerIter{h: n / 2, i: 1, k: 1}
}

type mergerIter struct {
	h, i, k int
}

func (it *mergerIter) Next() (bitvec.Vec, bool) {
	if it.i > it.h {
		return bitvec.Vec{}, false
	}
	// First half 0^(h−i) 1^i with i ≥ 1 ones; second half 0^k 1^(h−k)
	// with k ≥ 1 zeros; the leading 1 precedes the trailing 0, so the
	// whole is never sorted.
	v := bitvec.Concat(bitvec.SortedWithOnes(it.h, it.i), bitvec.SortedWithOnes(it.h, it.h-it.k))
	it.k++
	if it.k > it.h {
		it.k = 1
		it.i++
	}
	return v, true
}

// SorterPermTests returns the minimal permutation test set for sorting:
// C(n,⌊n/2⌋) − 1 permutations (Theorem 2.2(ii)), realized by the
// symmetric chain decomposition with the identity chain dropped.
func SorterPermTests(n int) []perm.P {
	return chains.SorterPermutations(n)
}

// SelectorPermTests returns the minimal permutation test set for the
// (k,n)-selector property: C(n,min(k,⌊n/2⌋)) − 1 permutations
// (Theorem 2.4(ii)).
func SelectorPermTests(n, k int) []perm.P {
	if k < 1 || k > n {
		panic(fmt.Sprintf("core: selector arity k=%d out of range 1..%d", k, n))
	}
	return chains.SelectorPermutations(n, k)
}

// MergerPermTests returns the minimal permutation test set for the
// (n/2,n/2)-merger property: the n/2 permutations τ₀..τ_{n/2−1}
// (Theorem 2.5(ii)).
func MergerPermTests(n int) []perm.P {
	return chains.MergerPermutations(n)
}
