// Package core implements the central results of Chung & Ravikumar,
// "Bounds on the Size of Test Sets for Sorting and Related Networks"
// (ICPP 1987 / Discrete Mathematics 81, 1990): the exact minimal test
// sets for deciding whether an arbitrary comparator network is a
// sorter, a (k,n)-selector, or an (n/2,n/2)-merger, for both 0/1 and
// permutation inputs, together with the Lemma 2.1 adversarial
// construction that proves the bounds tight.
//
// The six minimal test sets and their exact sizes:
//
//	Sorter,   0/1:   all non-sorted strings            2ⁿ − n − 1
//	Sorter,   perm:  SCD chain family                  C(n,⌊n/2⌋) − 1
//	Selector, 0/1:   non-sorted strings, ≤ k zeros     Σᵢ₌₀..k C(n,i) − k − 1
//	Selector, perm:  truncated SCD chain family        C(n,min(k,⌊n/2⌋)) − 1
//	Merger,   0/1:   sorted halves, unsorted whole     n²/4
//	Merger,   perm:  the τᵢ family                     n/2
//
// Lower bounds are witnessed constructively: AlmostSorter(σ) yields a
// network that sorts everything except σ, so no test set may omit any
// non-sorted σ; closure formulas (comb package) and chain covers
// (chains package) give the matching upper bounds. Every claim is
// machine-checked in the tests and the experiment harness.
package core

import (
	"fmt"
	"sync"

	"sortnets/internal/bitvec"
	"sortnets/internal/chains"
	"sortnets/internal/perm"
)

// SorterBinaryTests streams the minimal 0/1 test set for the sorting
// property: every non-sorted string of length n, in increasing word
// order. |T| = 2ⁿ − n − 1 (Theorem 2.2(i)); by Lemma 2.1 no smaller
// set works, and by the zero-one principle no larger set is needed.
func SorterBinaryTests(n int) bitvec.Iterator {
	return bitvec.NotSorted(bitvec.All(n))
}

// SelectorBinaryTests streams the minimal 0/1 test set T⁺ₖ for the
// (k,n)-selector property: every non-sorted string with at most k
// zeros. |T| = Σᵢ₌₀..k C(n,i) − (k+1) (Theorem 2.4(i)). Sufficiency
// follows from monotonicity: if H (k,n)-selects every σ′ with exactly
// k zeros, then for any σ ≥ σ′ the first k outputs are forced to 0.
func SelectorBinaryTests(n, k int) bitvec.Iterator {
	if k < 1 || k > n {
		panic(fmt.Sprintf("core: selector arity k=%d out of range 1..%d", k, n))
	}
	return bitvec.NotSorted(bitvec.MaxZeros(n, k))
}

// MergerBinaryTests streams the minimal 0/1 test set for the
// (n/2,n/2)-merger property: every concatenation σ₁σ₂ of two sorted
// halves that is not itself sorted — σ₁ must contain a 1 and σ₂ a 0.
// |T| = n²/4 (Theorem 2.5(i)).
func MergerBinaryTests(n int) bitvec.Iterator {
	if n%2 != 0 || n < 2 {
		panic(fmt.Sprintf("core: merger tests need even n ≥ 2, got %d", n))
	}
	return &mergerIter{h: n / 2, i: 1, k: 1}
}

type mergerIter struct {
	h, i, k int
}

func (it *mergerIter) Next() (bitvec.Vec, bool) {
	if it.i > it.h {
		return bitvec.Vec{}, false
	}
	// First half 0^(h−i) 1^i with i ≥ 1 ones; second half 0^k 1^(h−k)
	// with k ≥ 1 zeros; the leading 1 precedes the trailing 0, so the
	// whole is never sorted.
	v := bitvec.Concat(bitvec.SortedWithOnes(it.h, it.i), bitvec.SortedWithOnes(it.h, it.h-it.k))
	it.k++
	if it.k > it.h {
		it.k = 1
		it.i++
	}
	return v, true
}

// permFamilyCache memoizes the permutation test families. They are
// fixed mathematical objects per (property, n, k) — building one costs
// a full symmetric-chain decomposition, so verdict paths that certify
// many networks of the same width would otherwise rebuild the family
// per call (it dominated the permutation-verdict profile). Values are
// the canonical families; cachedPerms hands out arena-backed deep
// copies so callers stay free to mutate what they receive.
var permFamilyCache sync.Map // permFamilyKey -> []perm.P

type permFamilyKey struct {
	prop string
	n, k int
}

func cachedPerms(key permFamilyKey, build func() []perm.P) []perm.P {
	v, ok := permFamilyCache.Load(key)
	if !ok {
		v, _ = permFamilyCache.LoadOrStore(key, build())
	}
	master := v.([]perm.P)
	// Deep copy in two allocations: one backing array for all values,
	// one slice of headers.
	values := make([]int, len(master)*key.n)
	out := make([]perm.P, len(master))
	for i, p := range master {
		row := values[i*key.n : (i+1)*key.n]
		copy(row, p)
		out[i] = row
	}
	return out
}

// SorterPermTests returns the minimal permutation test set for sorting:
// C(n,⌊n/2⌋) − 1 permutations (Theorem 2.2(ii)), realized by the
// symmetric chain decomposition with the identity chain dropped.
// Families are memoized per n; the returned slice is the caller's own
// copy.
func SorterPermTests(n int) []perm.P {
	return cachedPerms(permFamilyKey{"sorter", n, 0}, func() []perm.P {
		return chains.SorterPermutations(n)
	})
}

// SelectorPermTests returns the minimal permutation test set for the
// (k,n)-selector property: C(n,min(k,⌊n/2⌋)) − 1 permutations
// (Theorem 2.4(ii)). Families are memoized per (n,k); the returned
// slice is the caller's own copy.
func SelectorPermTests(n, k int) []perm.P {
	if k < 1 || k > n {
		panic(fmt.Sprintf("core: selector arity k=%d out of range 1..%d", k, n))
	}
	return cachedPerms(permFamilyKey{"selector", n, k}, func() []perm.P {
		return chains.SelectorPermutations(n, k)
	})
}

// MergerPermTests returns the minimal permutation test set for the
// (n/2,n/2)-merger property: the n/2 permutations τ₀..τ_{n/2−1}
// (Theorem 2.5(ii)). Families are memoized per n; the returned slice
// is the caller's own copy.
func MergerPermTests(n int) []perm.P {
	return cachedPerms(permFamilyKey{"merger", n, 0}, func() []perm.P {
		return chains.MergerPermutations(n)
	})
}
