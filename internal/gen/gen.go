// Package gen constructs the classical comparator networks used as
// fixtures, baselines and substrates throughout the reproduction:
// Batcher's odd-even merge and mergesort (the "S(i)" and merging boxes
// the paper's Lemma 2.1 figures assemble), the quadratic bubble /
// insertion / selection networks, the height-1 odd-even transposition
// sorter of the Section 3 discussion, and the published size-optimal
// sorters for small n. All constructions use standard comparators only,
// as the paper's model requires (Batcher's *bitonic* sorter needs
// reversed comparators and is deliberately absent).
package gen

import (
	"fmt"

	"sortnets/internal/network"
)

// OddEvenMergeSort returns Batcher's odd-even merge sorting network for
// any n ≥ 0 (not just powers of two): sort each half recursively, then
// merge with the odd-even merge. These are the S(i) sorter boxes in the
// paper's Figs. 3–5.
func OddEvenMergeSort(n int) *network.Network {
	w := network.New(n)
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	sortPositions(w, pos)
	return w
}

func sortPositions(w *network.Network, p []int) {
	n := len(p)
	if n <= 1 {
		return
	}
	m := (n + 1) / 2
	sortPositions(w, p[:m])
	sortPositions(w, p[m:])
	mergePositions(w, p, m)
}

// OddEvenMerge returns Batcher's (m,n)-merging network on m+n lines:
// assuming lines 0..m−1 and m..m+n−1 each carry sorted sequences, the
// output is their sorted merge. For m = n = half it is exactly the
// (n/2,n/2)-merging network of Theorem 2.5.
func OddEvenMerge(m, n int) *network.Network {
	if m < 0 || n < 0 {
		panic(fmt.Sprintf("gen: negative merge arities (%d,%d)", m, n))
	}
	w := network.New(m + n)
	pos := make([]int, m+n)
	for i := range pos {
		pos[i] = i
	}
	mergePositions(w, pos, m)
	return w
}

// HalfMerger returns the (n/2,n/2)-merger on n lines (n even), the
// object of Theorem 2.5.
func HalfMerger(n int) *network.Network {
	if n%2 != 0 {
		panic(fmt.Sprintf("gen: half merger needs even n, got %d", n))
	}
	return OddEvenMerge(n/2, n/2)
}

// mergePositions emits Batcher's odd-even merge onto the increasing
// line list p, whose first m entries hold one sorted sequence and the
// rest the other. The recursion merges the odd-indexed and even-indexed
// subsequences, then compare-exchanges e_i with d_{i+1}; the index
// arithmetic guarantees each such pair lands on the lines p[2i-1], p[2i]
// regardless of the actual line numbers, so the scheme works on any
// increasing position list (see Knuth, TAOCP vol. 3, §5.3.4).
func mergePositions(w *network.Network, p []int, m int) {
	n := len(p) - m
	if m == 0 || n == 0 {
		return
	}
	if m == 1 && n == 1 {
		w.AddPair(p[0], p[1])
		return
	}
	// Split into odd-indexed (1st, 3rd, …) and even-indexed (2nd, 4th,
	// …) subsequences of each input, preserving order.
	var po, pe []int
	for i := 0; i < m; i += 2 {
		po = append(po, p[i])
	}
	for i := 1; i < m; i += 2 {
		pe = append(pe, p[i])
	}
	mo := len(po) // ⌈m/2⌉ odd-indexed x's
	for i := m; i < m+n; i += 2 {
		po = append(po, p[i])
	}
	for i := m + 1; i < m+n; i += 2 {
		pe = append(pe, p[i])
	}
	mergePositions(w, po, mo)
	mergePositions(w, pe, m/2)
	// d (on po) and e (on pe) interleave as z1=d1, {e_i,d_i+1}, …
	for i := 1; i <= len(pe) && i < len(po); i++ {
		a, b := pe[i-1], po[i]
		if a > b {
			a, b = b, a
		}
		w.AddPair(a, b)
	}
}

// Bubble returns the n-line bubble-sort network: pass j bubbles the
// largest remaining value to the bottom. Size n(n−1)/2, height 1.
func Bubble(n int) *network.Network {
	w := network.New(n)
	for pass := n - 1; pass >= 1; pass-- {
		for j := 0; j < pass; j++ {
			w.AddPair(j, j+1)
		}
	}
	return w
}

// Insertion returns the n-line insertion-sort network: stage i inserts
// line i into the sorted prefix. Same comparators as Bubble in a
// different order; also height 1 and size n(n−1)/2.
func Insertion(n int) *network.Network {
	w := network.New(n)
	for i := 1; i < n; i++ {
		for j := i; j >= 1; j-- {
			w.AddPair(j-1, j)
		}
	}
	return w
}

// OddEvenTransposition returns the classic n-round brick-wall sorter:
// alternating odd and even adjacent exchanges. It is a *height-1*
// sorter, the canonical member of the primitive-network class of
// Section 3 (de Bruijn), where a single test — the reverse permutation
// — decides sorter-ness.
func OddEvenTransposition(n int) *network.Network {
	w := network.New(n)
	for round := 0; round < n; round++ {
		for j := round % 2; j+1 < n; j += 2 {
			w.AddPair(j, j+1)
		}
	}
	return w
}

// Selection returns a (k,n)-selection network: after it runs, output
// line i carries the (i+1)-st smallest input for every i < k. Pass i
// sinks the minimum of lines i..n−1 to line i. With k = n−1 it is a
// full sorter.
func Selection(n, k int) *network.Network {
	if k < 0 || k > n {
		panic(fmt.Sprintf("gen: selection arity k=%d out of range for n=%d", k, n))
	}
	w := network.New(n)
	for i := 0; i < k && i < n-1; i++ {
		for j := n - 1; j > i; j-- {
			w.AddPair(j-1, j)
		}
	}
	return w
}

// optimalComps lists published size-optimal sorting networks for
// n = 2..8 (0-based line pairs; sizes 1, 3, 5, 9, 12, 16, 19). These
// are the smallest possible sorters for their n and serve as "true
// positive" fixtures for every test-set experiment. Each is verified
// against the zero-one principle in the package tests.
var optimalComps = map[int][][2]int{
	2: {{0, 1}},
	3: {{0, 1}, {0, 2}, {1, 2}},
	4: {{0, 1}, {2, 3}, {0, 2}, {1, 3}, {1, 2}},
	5: {{0, 1}, {3, 4}, {2, 4}, {2, 3}, {1, 4}, {0, 3}, {0, 2}, {1, 3}, {1, 2}},
	6: {{1, 2}, {4, 5}, {0, 2}, {3, 5}, {0, 1}, {3, 4}, {2, 5}, {0, 3}, {1, 4},
		{2, 4}, {1, 3}, {2, 3}},
	7: {{1, 2}, {3, 4}, {5, 6}, {0, 2}, {3, 5}, {4, 6}, {0, 1}, {4, 5}, {2, 6},
		{0, 4}, {1, 5}, {0, 3}, {2, 5}, {1, 3}, {2, 4}, {2, 3}},
	8: {{0, 1}, {2, 3}, {4, 5}, {6, 7}, {0, 2}, {1, 3}, {4, 6}, {5, 7}, {1, 2},
		{5, 6}, {0, 4}, {3, 7}, {1, 5}, {2, 6}, {1, 4}, {3, 6}, {2, 4}, {3, 5},
		{3, 4}},
}

// OptimalSizes records the known minimum comparator counts for n=2..8.
var OptimalSizes = map[int]int{2: 1, 3: 3, 4: 5, 5: 9, 6: 12, 7: 16, 8: 19}

// Optimal returns a published size-optimal sorting network for
// 2 ≤ n ≤ 8, or nil when no optimal network is tabulated for n.
func Optimal(n int) *network.Network {
	comps, ok := optimalComps[n]
	if !ok {
		return nil
	}
	w := network.New(n)
	for _, c := range comps {
		w.AddPair(c[0], c[1])
	}
	return w
}

// Sorter returns a good sorting network for any n: the tabulated
// optimal one when available, Batcher's odd-even mergesort otherwise.
// This is the S(i) box used by the Lemma 2.1 construction.
func Sorter(n int) *network.Network {
	if w := Optimal(n); w != nil {
		return w
	}
	return OddEvenMergeSort(n)
}
