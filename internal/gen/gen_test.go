package gen

import (
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/network"
)

func TestOddEvenMergeSortSortsAll(t *testing.T) {
	for n := 0; n <= 17; n++ {
		w := OddEvenMergeSort(n)
		if err := w.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !w.SortsAllBinary() {
			t.Errorf("n=%d: Batcher mergesort fails on %s", n, w.FirstBinaryFailure())
		}
	}
}

func TestOddEvenMergeSortSizePowersOfTwo(t *testing.T) {
	// For n = 2^k Batcher's network has (k²−k+4)·2^(k−2) − 1
	// comparators (Knuth 5.3.4 eq. 10).
	want := map[int]int{2: 1, 4: 5, 8: 19, 16: 63, 32: 191}
	for n, size := range want {
		if got := OddEvenMergeSort(n).Size(); got != size {
			t.Errorf("n=%d: size %d, want %d", n, got, size)
		}
	}
}

func TestOddEvenMergeAllArities(t *testing.T) {
	// Exhaustive: for every (m,n) with m+n ≤ 16 and every pair of
	// sorted halves, the merge output must be sorted.
	for m := 0; m <= 8; m++ {
		for n := 0; n <= 8; n++ {
			w := OddEvenMerge(m, n)
			if err := w.Validate(); err != nil {
				t.Fatalf("(%d,%d): %v", m, n, err)
			}
			for i := 0; i <= m; i++ {
				for j := 0; j <= n; j++ {
					in := bitvec.Concat(bitvec.SortedWithOnes(m, i), bitvec.SortedWithOnes(n, j))
					if out := w.ApplyVec(in); !out.IsSorted() {
						t.Fatalf("merge(%d,%d) fails on %s -> %s (net %s)", m, n, in, out, w)
					}
				}
			}
		}
	}
}

func TestOddEvenMergeSize(t *testing.T) {
	// M(m,m) for m a power of two has m·log2(m)+1 ... spot-check known
	// values: M(1,1)=1, M(2,2)=3, M(4,4)=9, M(8,8)=25 (Knuth table).
	want := map[int]int{1: 1, 2: 3, 4: 9, 8: 25}
	for m, size := range want {
		if got := OddEvenMerge(m, m).Size(); got != size {
			t.Errorf("M(%d,%d) size %d, want %d", m, m, got, size)
		}
	}
}

func TestHalfMerger(t *testing.T) {
	w := HalfMerger(8)
	if w.N != 8 {
		t.Fatal("wrong line count")
	}
	defer func() {
		if recover() == nil {
			t.Error("odd n should panic")
		}
	}()
	HalfMerger(7)
}

func TestMergerIsNotASorter(t *testing.T) {
	// A merger must NOT be a sorter (it assumes sorted halves) — this
	// distinction is why Theorem 2.5's test set is so much smaller.
	for n := 4; n <= 12; n += 2 {
		if HalfMerger(n).SortsAllBinary() {
			t.Errorf("n=%d: merger unexpectedly sorts everything", n)
		}
	}
}

func TestBubbleInsertionSortAll(t *testing.T) {
	for n := 0; n <= 12; n++ {
		if !Bubble(n).SortsAllBinary() {
			t.Errorf("bubble n=%d fails", n)
		}
		if !Insertion(n).SortsAllBinary() {
			t.Errorf("insertion n=%d fails", n)
		}
		if n >= 2 {
			wantSize := n * (n - 1) / 2
			if got := Bubble(n).Size(); got != wantSize {
				t.Errorf("bubble n=%d size %d, want %d", n, got, wantSize)
			}
			if got := Insertion(n).Size(); got != wantSize {
				t.Errorf("insertion n=%d size %d, want %d", n, got, wantSize)
			}
		}
	}
}

func TestQuadraticNetworksAreHeight1(t *testing.T) {
	for n := 2; n <= 10; n++ {
		if h := Bubble(n).Height(); h != 1 {
			t.Errorf("bubble n=%d height %d", n, h)
		}
		if h := Insertion(n).Height(); h != 1 {
			t.Errorf("insertion n=%d height %d", n, h)
		}
		if h := OddEvenTransposition(n).Height(); h != 1 {
			t.Errorf("OET n=%d height %d", n, h)
		}
	}
}

func TestOddEvenTranspositionSorts(t *testing.T) {
	for n := 0; n <= 14; n++ {
		w := OddEvenTransposition(n)
		if !w.SortsAllBinary() {
			t.Errorf("OET n=%d fails on %s", n, w.FirstBinaryFailure())
		}
	}
	// One round fewer must NOT sort (n rounds are necessary for the
	// brick-wall pattern at these sizes).
	for _, n := range []int{4, 6, 8} {
		w := network.New(n)
		for round := 0; round < n-2; round++ {
			for j := round % 2; j+1 < n; j += 2 {
				w.AddPair(j, j+1)
			}
		}
		if w.SortsAllBinary() {
			t.Errorf("n=%d: truncated OET should not sort", n)
		}
	}
}

func TestSelectionSelects(t *testing.T) {
	// For every k, the first k outputs must be the k smallest bits in
	// order, over the whole binary universe.
	for n := 1; n <= 10; n++ {
		for k := 0; k <= n; k++ {
			w := Selection(n, k)
			it := bitvec.All(n)
			for {
				v, ok := it.Next()
				if !ok {
					break
				}
				out := w.ApplyVec(v)
				want := v.Sorted()
				for i := 0; i < k; i++ {
					if out.Bit(i) != want.Bit(i) {
						t.Fatalf("Selection(%d,%d) on %s: output %s, want prefix of %s",
							n, k, v, out, want)
					}
				}
			}
		}
	}
}

func TestSelectionFullIsSorter(t *testing.T) {
	for n := 2; n <= 10; n++ {
		if !Selection(n, n-1).SortsAllBinary() {
			t.Errorf("Selection(%d,%d) should be a sorter", n, n-1)
		}
	}
}

func TestOptimalNetworksSortAndMatchSizes(t *testing.T) {
	for n := 2; n <= 8; n++ {
		w := Optimal(n)
		if w == nil {
			t.Fatalf("no optimal network for n=%d", n)
		}
		if !w.SortsAllBinary() {
			t.Errorf("optimal n=%d fails on %s", n, w.FirstBinaryFailure())
		}
		if got := w.Size(); got != OptimalSizes[n] {
			t.Errorf("optimal n=%d size %d, want %d", n, got, OptimalSizes[n])
		}
	}
	if Optimal(9) != nil {
		t.Error("Optimal(9) should be nil")
	}
}

func TestSorterAlwaysSorts(t *testing.T) {
	for n := 0; n <= 16; n++ {
		if !Sorter(n).SortsAllBinary() {
			t.Errorf("Sorter(%d) fails", n)
		}
	}
	// Small n uses the optimal tables.
	if Sorter(6).Size() != OptimalSizes[6] {
		t.Error("Sorter(6) should use the optimal table")
	}
}

func TestGenPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative merge", func() { OddEvenMerge(-1, 2) })
	mustPanic("selection range", func() { Selection(4, 5) })
}
