// Package dep is the dependency half of the cross-package facts
// fixture. Its import path is NOT in any analyzer's reporting scope,
// so this file must stay silent — but the pass still exports facts:
// Watch's ctx-bounded summary and LockAB's acquisition edge, which
// the sibling client package consumes.
package dep

import (
	"context"
	"sync"
)

// MuA and MuB are the shared locks whose ordering the client half
// reverses.
var (
	MuA sync.Mutex
	MuB sync.Mutex
)

// Watch bounds its own lifetime on ctx: launching it as a goroutine
// is launching something that dies with its context.
func Watch(ctx context.Context) {
	<-ctx.Done()
}

// Spin takes a context and ignores it; no fact is exported, so a
// launch of Spin proves nothing.
func Spin(ctx context.Context) {
	for {
		_ = ctx
	}
}

// LockAB establishes the A-before-B order this package promises.
func LockAB() {
	MuA.Lock()
	MuB.Lock()
	MuB.Unlock()
	MuA.Unlock()
}
