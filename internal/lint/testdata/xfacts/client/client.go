// Package client is the consumer half of the cross-package facts
// fixture: its judgements depend on facts the dep package exported —
// goroutineleak's ctx-bounded summary and lockorder's acquisition
// edges — not on anything visible in this file alone.
package client

import (
	"context"

	"sortnets/testdata/xfacts/dep"
)

// launch gets dep.Watch for free (its fact says ctx-bounded) and must
// still flag dep.Spin, whose body this package cannot see and whose
// fact does not exist.
func launch(ctx context.Context) {
	go dep.Watch(ctx)
	go dep.Spin(ctx) // want "goroutine has no provable join"
}

// reversed takes dep's locks in the opposite order to dep.LockAB.
// The cycle only exists in the union of both packages' edges.
func reversed() {
	dep.MuB.Lock()
	dep.MuA.Lock() // want "closes a lock-order cycle"
	dep.MuA.Unlock()
	dep.MuB.Unlock()
}
