// Package fixture exercises the wirestrict analyzer: keyed-literal
// enforcement on json-tagged structs and codec field coverage for
// hand-rolled encoder/decoder pairs, including the parent-chain
// fallback for sections encoded inline.
package fixture

type Ping struct {
	ID   string `json:"id"`
	Seq  int    `json:"seq"`
	Note string `json:"note"` // want `missing from encoder AppendPing`
}

// AppendPing hand-encodes Ping but forgot the "note" field.
func AppendPing(dst []byte, p *Ping) []byte {
	dst = append(dst, `{"id":`...)
	dst = append(dst, p.ID...)
	dst = append(dst, `,"seq":`...)
	dst = appendInt(dst, p.Seq)
	return append(dst, '}')
}

// UnmarshalPingLine covers every field.
func UnmarshalPingLine(data []byte, p *Ping) error {
	for _, key := range []string{"id", "seq", "note"} {
		_ = key
	}
	_ = data
	return nil
}

// Reply embeds a section struct encoded inline by the parent codec.
type Reply struct {
	ID   string `json:"id"`
	Echo *Echo  `json:"echo,omitempty"`
}

type Echo struct {
	Text  string `json:"text"`
	Times int    `json:"times"` // want `missing from encoder AppendReply`
}

// AppendReply encodes Reply and its Echo section inline, but dropped
// "times"; the parent-chain fallback attributes the miss to it.
func AppendReply(dst []byte, r *Reply) []byte {
	dst = append(dst, `{"id":`...)
	dst = append(dst, r.ID...)
	if r.Echo != nil {
		dst = append(dst, `,"echo":{"text":`...)
		dst = append(dst, r.Echo.Text...)
		dst = append(dst, '}')
	}
	return append(dst, '}')
}

// Plain has no json tags: not a wire struct, positional literals and
// absent codecs are fine.
type Plain struct {
	A, B int
}

func mkPlain() Plain {
	return Plain{1, 2}
}

func mkKeyed() Ping {
	return Ping{ID: "a", Seq: 1, Note: "x"}
}

func mkUnkeyed() Ping {
	return Ping{"a", 1, "x"} // want `unkeyed composite literal`
}

func appendInt(dst []byte, n int) []byte {
	return append(dst, byte('0'+n%10))
}
