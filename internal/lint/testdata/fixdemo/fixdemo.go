// Package fixdemo is the -fix applier's fixture: the findings here
// exist to have their suggested fixes applied by TestHotAllocFix, so
// the file carries no want comments and is loaded only by that test.
package fixdemo

import "fmt"

func constErr() error {
	return fmt.Errorf("sort network misconfigured")
}

func constErrAgain() error {
	return fmt.Errorf("second constant message")
}
