// Package fixture exercises the suppression path: findings silenced
// by a documented //lint:ignore on the flagged line or the line
// above. The fixture expects zero diagnostics — a weakened
// suppression matcher fails it with unexpected findings.
package fixture

import "fmt"

func commentAbove() error {
	//lint:ignore hotalloc fixture: exercising the comment-above suppression form
	return fmt.Errorf("static message")
}

func trailing() error {
	return fmt.Errorf("static message") //lint:ignore hotalloc fixture: exercising the trailing suppression form
}

func listForm() error {
	//lint:ignore hotalloc,ctxloop fixture: a comma-separated analyzer list suppresses each named analyzer
	return fmt.Errorf("static message")
}

func allForm() error {
	//lint:ignore all fixture: the catch-all form suppresses every analyzer
	return fmt.Errorf("static message")
}
