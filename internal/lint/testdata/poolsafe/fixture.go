// Package fixture exercises the poolsafe analyzer: Get/Put balance,
// checkout and put wrappers, Put-value shape, goroutine escape, and
// the per-pool reset discipline.
package fixture

import "sync"

type scratch struct {
	buf []byte
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

// balanced Gets, resets, and Puts in one function: the canonical
// cycle.
func balanced() {
	sc := pool.Get().(*scratch)
	sc.buf = sc.buf[:0]
	defer pool.Put(sc)
	use(sc)
}

// checkout returns the pooled value: its callers own the cycle, so
// the Get is released by the return.
func checkout() *scratch {
	sc := pool.Get().(*scratch)
	sc.buf = sc.buf[:0]
	return sc
}

// release is a put-wrapper: handing a pooled value to it counts as a
// Put for the caller.
func release(sc *scratch) {
	pool.Put(sc)
}

// handoff releases through the put-wrapper.
func handoff() {
	sc := checkout()
	defer release(sc)
	use(sc)
}

// leak Gets and never releases on any path.
func leak() {
	sc := pool.Get().(*scratch) // want `no reachable Put`
	use(sc)
}

// discarded drops the Get result on the floor.
func discarded() {
	pool.Get() // want `discarded`
}

// escape hands the pooled value to a goroutine that may outlive the
// Put below.
func escape() {
	sc := pool.Get().(*scratch) // want `captured by a goroutine`
	go func() {
		use(sc)
	}()
	pool.Put(sc)
}

// valuePool is Put bare slices: each Put boxes the slice header into
// the pool's any, allocating on the path the pool should keep free.
// It also has no reset anywhere on its cycle.
var valuePool sync.Pool

func badShape(b []byte) {
	valuePool.Put(b) // want `non-pointer value` `ever resets`
}

func use(*scratch) {}
