// Package lockorder exercises the lock-graph analyzer inside one
// package: ordering cycles (direct and through a callee's acquisition
// summary), recursive locks, instance-vs-symbol discrimination, and
// atomic-under-mutex discipline mixing (which needs atomicfield's
// facts, so the fixture runs both analyzers).
package lockorder

import (
	"sync"
	"sync/atomic"
)

type server struct {
	mu    sync.Mutex
	other sync.Mutex
	hits  int64
}

// abPath acquires mu then other.
func (s *server) abPath() {
	s.mu.Lock()
	s.other.Lock() // want "closes a lock-order cycle"
	s.other.Unlock()
	s.mu.Unlock()
}

// baPath acquires them in the reverse order: together with abPath the
// graph has a cycle, and both closing edges are reported.
func (s *server) baPath() {
	s.other.Lock()
	s.mu.Lock() // want "closes a lock-order cycle"
	s.mu.Unlock()
	s.other.Unlock()
}

// recursive re-locks a mutex this goroutine provably already holds
// (same symbol AND same instance).
func (s *server) recursive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want "recursive acquisition"
}

// transfer holds the SAME symbol on two DIFFERENT instances: that is
// instance-ordered (by caller convention), not symbol-ordered, so it
// is neither an edge nor a recursive lock.
func transfer(a, b *server) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// observe keeps hits on the sync/atomic discipline so atomicfield
// exports its fact.
func (s *server) observe() {
	atomic.AddInt64(&s.hits, 1)
}

// flush touches the atomic counter while holding the mutex: the lock
// protects nothing there, and one regime must own the field.
func (s *server) flush() {
	s.mu.Lock()
	atomic.AddInt64(&s.hits, 1) // want "atomic access to .* while holding"
	s.mu.Unlock()
}

// scoped is the same shape deliberately: the suppression's reason is
// the reviewable artifact.
func (s *server) scoped() {
	s.mu.Lock()
	//lint:ignore lockorder warm-up increment races harmlessly with flush; the lock is for the map below
	atomic.AddInt64(&s.hits, 1)
	s.mu.Unlock()
}

type registry struct {
	regMu  sync.Mutex
	itemMu sync.Mutex
}

func (r *registry) lockItem() {
	r.itemMu.Lock()
	r.itemMu.Unlock()
}

// item2reg acquires itemMu then regMu directly.
func (r *registry) item2reg() {
	r.itemMu.Lock()
	r.regMu.Lock() // want "closes a lock-order cycle"
	r.regMu.Unlock()
	r.itemMu.Unlock()
}

// scan closes the cycle WITHOUT touching itemMu syntactically: the
// edge comes from lockItem's acquisition summary at the call site.
func (r *registry) scan() {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	r.lockItem() // want "closes a lock-order cycle"
}
