// Package serve exercises statscover. Rule A: every atomic counter
// field — typed sync/atomic or a raw integer carrying an atomicfield
// fact — must be Load()ed in some stats/snapshot-named function.
// Rule B: json keys of *Stats/*Snapshot structs must appear in the
// nearest README.md, which for this fixture is the one in this
// directory.
package serve

import "sync/atomic"

type endpointStats struct {
	hits   atomic.Int64
	misses atomic.Int64 // want "atomic counter misses is never Load"
	//lint:ignore statscover epoch is a generation tag the tests compare directly, not telemetry
	epoch atomic.Int64
	raw   int64
}

// bump is the hot path: increments surface nothing on their own.
func bump(s *endpointStats) {
	s.hits.Add(1)
	s.misses.Add(1)
	s.epoch.Add(1)
	atomic.AddInt64(&s.raw, 1)
}

// StatsSnapshot is the operator surface; Raw's key is missing from
// the fixture README.
type StatsSnapshot struct {
	Hits     int64 `json:"hits"`
	Raw      int64 `json:"raw_bytes"` // want `stats key "raw_bytes" \(StatsSnapshot\.Raw\) is not documented`
	internal int64
}

// snapshot reads the counters: hits through the typed Load, raw
// through the sync/atomic function form.
func snapshot(s *endpointStats) StatsSnapshot {
	return StatsSnapshot{
		Hits: s.hits.Load(),
		Raw:  atomic.LoadInt64(&s.raw),
	}
}
