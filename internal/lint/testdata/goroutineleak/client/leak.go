// Package client exercises goroutineleak. The fixture import path
// ends in /client, putting every go statement in scope; each launch
// below demonstrates one evidence class (or its absence).
package client

import (
	"context"
	"sync"
)

func work() {}

func work2() error { return nil }

// leakyLit launches a literal nothing ever joins.
func leakyLit() {
	go func() { // want "goroutine has no provable join"
		work()
	}()
}

// leakyNamed launches a named function whose body proves nothing.
func leakyNamed() {
	go work() // want "goroutine has no provable join"
}

// wgJoined pairs the launch with Add/Done/Wait on one WaitGroup.
func wgJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// bufferedDone sends completion into a channel made with capacity 1
// in the launching function: the send can never block, so the
// goroutine always terminates.
func bufferedDone() {
	done := make(chan struct{}, 1)
	go func() {
		work()
		done <- struct{}{}
	}()
}

// receivedDone is the classic done-channel join: the launcher
// receives what the goroutine sends.
func receivedDone() error {
	done := make(chan error)
	go func() {
		done <- work2()
	}()
	return <-done
}

// unbufferedUnreceived sends on an unbuffered channel nobody ever
// receives from: the send blocks forever, which is the leak.
func unbufferedUnreceived() {
	dead := make(chan struct{})
	go func() { // want "goroutine has no provable join"
		work()
		dead <- struct{}{}
	}()
}

// ctxBounded dies with its context.
func ctxBounded(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

// factBounded launches a declared function whose own body is
// ctx-bounded — judged through the fact this very pass exported.
func factBounded(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			work()
		}
	}
}

// detached is a deliberate fire-and-forget: the suppression's reason
// is the reviewable artifact.
func detached() {
	//lint:ignore goroutineleak the pipe writer unblocks it on close; waiting here could deadlock the reader
	go work()
}

// wrongName suppresses a different analyzer, which must not silence
// the finding.
func wrongName() {
	//lint:ignore hotalloc misdirected suppression
	go work() // want "goroutine has no provable join"
}
