// Package fixture exercises the ctxloop analyzer. It is checked under
// an in-scope import path (internal/eval), so the sibling-bypass and
// ctx-forwarding rules apply in addition to the annotation rule.
package fixture

import "context"

// goodLoop consults ctx inside the loop: the annotated contract holds.
//
//sortnets:ctxloop
func goodLoop(ctx context.Context, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return s
		}
		s += i
	}
	return s
}

// goodSelect consults ctx through the Done channel inside the loop.
//
//sortnets:ctxloop
func goodSelect(ctx context.Context, work chan int) int {
	s := 0
	for {
		select {
		case <-ctx.Done():
			return s
		case v := <-work:
			s += v
		}
	}
}

// hoisted checks the context once, outside the loop — the per-block
// contract the annotation asserts does not hold.
//
//sortnets:ctxloop
func hoisted(ctx context.Context, n int) int { // want `no loop consults the context`
	if ctx.Err() != nil {
		return 0
	}
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

//sortnets:ctxloop
func noLoop(ctx context.Context) error { // want `contains no for loop`
	return ctx.Err()
}

//sortnets:ctxloop
func noCtx(n int) int { // want `no context.Context parameter`
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// Work / WorkCtx model a non-ctx entry point with a Ctx sibling.
func Work(n int) int { return n }

func WorkCtx(ctx context.Context, n int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return n, nil
}

// bypass drops from context-carrying code into the non-ctx entry
// point, severing the cancellation chain.
func bypass(ctx context.Context, n int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return Work(n), nil // want `WorkCtx exists`
}

// forwarded calls the Ctx sibling: nothing to flag.
func forwarded(ctx context.Context, n int) (int, error) {
	return WorkCtx(ctx, n)
}

// dropped loops without ever consulting or forwarding its context.
func dropped(ctx context.Context, n int) int { // want `never consults or forwards`
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// unused declares its intent: a blank context is exempt.
func unused(_ context.Context, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
