// Package fixture holds a suppression with no reason: the comment is
// itself reported and does NOT silence the finding below it. Checked
// by explicit assertions in lint_test.go (the diagnostic lands on the
// comment's own line, where a want comment cannot sit).
package fixture

import "fmt"

func missingReason() error {
	//lint:ignore hotalloc
	return fmt.Errorf("static message")
}
