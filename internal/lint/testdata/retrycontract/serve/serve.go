// Package serve exercises the serve half of retrycontract: constant
// 429/503/504 emissions must have a Retry-After Set reachable-from on
// the CFG, and RequestError literals with those statuses must carry
// the typed hint.
package serve

import "net/http"

// RequestError mirrors the shape the analyzer recognizes: a named
// RequestError carrying Status and RetryAfter.
type RequestError struct {
	Status     int
	Msg        string
	RetryAfter int
}

func (e *RequestError) Error() string { return e.Msg }

// bare writes the backpressure status with no hint anywhere.
func bare(w http.ResponseWriter) {
	w.WriteHeader(429) // want "429 response is written without a Retry-After header"
}

// hinted sets the header first; the named constant still resolves to
// a constant 503.
func hinted(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
}

// partial hints only one branch, but the post-join write is reachable
// from the Set — some-path semantics, deliberately not flagged.
func partial(w http.ResponseWriter, degraded bool) {
	if degraded {
		w.Header().Set("Retry-After", "2")
	}
	w.WriteHeader(503)
}

// branchMiss hints the primary path only; the fallback emission is on
// a path no Set reaches.
func branchMiss(w http.ResponseWriter, primary bool) {
	if primary {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(503)
		return
	}
	w.WriteHeader(503) // want "503 response is written without a Retry-After header"
}

// writeError is the helper form: a ResponseWriter parameter makes its
// call sites emissions when a constant backpressure status flows in.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.WriteHeader(status)
	_, _ = w.Write([]byte(msg))
}

func shed(w http.ResponseWriter) {
	writeError(w, 503, "shed") // want "503 response is written without a Retry-After header"
}

func shedHinted(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, 504, "upstream deadline")
}

// semantic statuses owe no hint.
func rejected(w http.ResponseWriter) {
	writeError(w, 400, "malformed cube")
}

// overload builds the typed error without the hint: 0 decodes as
// "none" on the wire.
func overload() error {
	return &RequestError{Status: 429, Msg: "overloaded"} // want "RequestError with status 429 carries no RetryAfter"
}

func overloadHinted() error {
	return &RequestError{Status: 429, Msg: "overloaded", RetryAfter: 1}
}

func badRequest() error {
	return &RequestError{Status: 400, Msg: "bad cube"}
}

// teapot is a deliberate exception, documented where it is made.
func teapot(w http.ResponseWriter) {
	//lint:ignore retrycontract the CDN strips Retry-After on this route; the hint rides in the body
	w.WriteHeader(429)
}
