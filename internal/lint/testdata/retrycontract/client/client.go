// Package client exercises the client half of retrycontract: a
// function that classifies *RequestError outcomes and feeds a breaker
// must guard on re.Status < 500, and the guard's true branch must not
// reach Failure().
package client

import (
	"errors"
	"net/http"
)

type RequestError struct {
	Status     int
	RetryAfter int
}

func (e *RequestError) Error() string { return "request error" }

type breaker struct{}

func (b *breaker) Failure() {}
func (b *breaker) Success() {}

func recordSemantic() {}

// unguarded counts every typed error as backend failure: a caller's
// own 4xx can open the breaker on a healthy backend.
func unguarded(b *breaker, err error) {
	var re *RequestError
	if errors.As(err, &re) {
		b.Failure() // want `breaker Failure\(\) is fed \*RequestError outcomes with no semantic guard`
	}
}

// guarded returns on the semantic branch before the breaker sees it.
func guarded(b *breaker, err error) {
	var re *RequestError
	if errors.As(err, &re) {
		if re.Status < 500 && re.Status != http.StatusTooManyRequests {
			b.Success()
			return
		}
	}
	b.Failure()
}

// leaky has the guard but falls through it: the semantic branch still
// reaches the breaker.
func leaky(b *breaker, err error) {
	var re *RequestError
	if errors.As(err, &re) && re.Status < 500 {
		recordSemantic()
	}
	b.Failure() // want `Failure\(\) is reachable from the semantic-4xx branch`
}

// adminReset trips the breaker on purpose; the suppression carries
// the why.
func adminReset(b *breaker, err error) {
	var re *RequestError
	if !errors.As(err, &re) {
		return
	}
	//lint:ignore retrycontract operator-forced trip: the admin endpoint opens the breaker deliberately
	b.Failure()
}
