// Package fixture exercises the atomicfield analyzer: mixed
// atomic/plain access to the same field, the keyed-literal exemption,
// and 64-bit alignment under 32-bit layout.
package fixture

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

// readRace reads c.hits without the atomic load that every other
// access site uses.
func (c *counters) readRace() int64 {
	return c.hits // want `accessed non-atomically here`
}

// readOK uses the atomic load: sanctioned.
func (c *counters) readOK() int64 {
	return atomic.LoadInt64(&c.hits)
}

// construct initializes via a keyed literal before publication:
// exempt.
func construct() *counters {
	return &counters{hits: 0, misses: 0}
}

// plainOnly is never touched by sync/atomic, so plain access is fine.
func (c *counters) plainOnly() int64 {
	c.misses++
	return c.misses
}

// misaligned puts an atomically accessed int64 at offset 4 under
// 32-bit layout (bool at 0, int64 aligned to 4 on 386).
type misaligned struct {
	ready bool
	n     int64 // want `offset 4 under 32-bit layout`
}

func (m *misaligned) add() {
	atomic.AddInt64(&m.n, 1)
}

// typed uses the self-aligning wrapper: nothing to check.
type typed struct {
	ready bool
	n     atomic.Int64
}

func (t *typed) add() {
	t.n.Add(1)
}
