// Package fixture exercises the hotalloc analyzer: denylisted calls
// and allocating conversions inside //sortnets:hotpath functions, and
// the everywhere-applicable constant-format rule.
package fixture

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// hotJSON violates the codec contract outright.
//
//sortnets:hotpath
func hotJSON(v any) []byte {
	b, _ := json.Marshal(v) // want `calls encoding/json.Marshal`
	return b
}

//sortnets:hotpath
func hotFmt(n int) string {
	return fmt.Sprintf("%d", n) // want `calls fmt.Sprintf`
}

//sortnets:hotpath
func hotItoa(dst []byte, n int) []byte {
	s := strconv.Itoa(n) // want `strconv.Itoa`
	return append(dst, s...)
}

// hotAppend uses the append-style strconv forms: allowed.
//
//sortnets:hotpath
func hotAppend(dst []byte, n int) []byte {
	return strconv.AppendInt(dst, int64(n), 10)
}

//sortnets:hotpath
func hotStringConv(b []byte) string {
	return string(b) // want `converts \[\]byte to string`
}

//sortnets:hotpath
func hotBytesConv(s string) []byte {
	return []byte(s) // want `converts string to \[\]byte`
}

// hotConstConv converts a constant: folded at compile time, free.
//
//sortnets:hotpath
func hotConstConv() []byte {
	return []byte("header")
}

//sortnets:hotpath
func hotConcat(a, b string) string {
	return a + b // want `concatenates strings`
}

// coldFmt carries no annotation: the denylist does not apply.
func coldFmt(n int) string {
	return fmt.Sprintf("%d", n)
}

// constFmt formats only constants — same string every call, wherever
// it runs.
func constFmt() string {
	return fmt.Sprintf("limit %d bytes", 1<<20) // want `formats only constants`
}

func constErr() error {
	return fmt.Errorf("bad input") // want `errors.New`
}

// varFmt has a run-time argument: fine.
func varFmt(n int) string {
	return fmt.Sprintf("limit %d bytes", n)
}

// precomputed runs once at init — the recommended fix, exempt.
var precomputed = fmt.Sprintf("limit %d bytes", 1<<20)
