package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// RetryContract machine-enforces the two halves of the Retry-After
// contract the failover plane (PR 7–8) is built on: a zero-failed-
// request drain/shed/failover depends on servers always telling
// clients WHEN to come back, and on clients never punishing a backend
// for the caller's own bad request.
//
// Serve side (packages whose import path ends in "serve"):
//
//   - S1: any response written with a constant 429, 503 or 504 status
//     — w.WriteHeader(...) or a helper taking an http.ResponseWriter —
//     must be preceded, on some path through the function's CFG, by a
//     Header().Set("Retry-After", ...) call. A backpressure status
//     without the hint turns a polite client into a hammering one.
//     The suggested fix inserts the missing Set (seconds value 1, the
//     shed default; prefer RetryAfterSeconds for derived durations).
//
//   - S2: a composite literal of a RequestError-shaped type (named
//     RequestError, carrying a RetryAfter field) with a constant 429/
//     503/504 Status must populate RetryAfter — the typed error IS
//     the wire contract on per-line (NDJSON) and mapped error paths,
//     and 0 decodes as "no hint". The fix appends RetryAfter: 1.
//
// Client side (packages whose import path ends in "client"):
//
//   - C1: a function that classifies *RequestError outcomes
//     (errors.As) AND feeds a breaker (a .Failure(...) call) must
//     carry the semantic guard — a re.Status < 500 comparison — and
//     the Failure call must NOT be reachable from the guard's true
//     branch (CFG reachability). A semantic 4xx means the wire and
//     the backend are healthy; counting it as failure opens breakers
//     on well-formed traffic mid-incident, exactly when failover
//     needs them honest.
var RetryContract = &Analyzer{
	Name:    "retrycontract",
	Doc:     "429/503/504 emissions must carry Retry-After; client breakers must not count semantic 4xx as backend failure",
	Version: "1",
	Run:     runRetryContract,
}

// RetryContractServeScope / RetryContractClientScope select where
// each half applies.
var RetryContractServeScope = func(path string) bool {
	return path == "serve" || strings.HasSuffix(path, "/serve")
}

var RetryContractClientScope = func(path string) bool {
	return path == "client" || strings.HasSuffix(path, "/client")
}

// retryStatuses are the backpressure statuses that promise a hint.
var retryStatuses = map[int64]bool{429: true, 503: true, 504: true}

func runRetryContract(pass *Pass) error {
	if RetryContractServeScope(pass.Pkg.Path()) {
		for _, fd := range funcDecls(pass.Files) {
			checkServeEmissions(pass, fd)
		}
		checkRequestErrorLiterals(pass)
	}
	if RetryContractClientScope(pass.Pkg.Path()) {
		for _, fd := range funcDecls(pass.Files) {
			checkBreakerClassification(pass, fd)
		}
	}
	return nil
}

// constStatus resolves an expression to a constant integer, ok only
// for compile-time constants.
func constStatus(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

// isResponseWriter reports whether t is net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	return isNamedType(t, "net/http", "ResponseWriter")
}

// emission is one constant-status backpressure write.
type emission struct {
	call   *ast.CallExpr
	status int64
	writer ast.Expr // the http.ResponseWriter expression, when identifiable
}

// checkServeEmissions applies S1 to one function.
func checkServeEmissions(pass *Pass, fd *ast.FuncDecl) {
	var emissions []emission
	var retryAfterSets []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isRetryAfterSet(pass.Info, call) {
			retryAfterSets = append(retryAfterSets, call)
			return true
		}
		if e, ok := statusEmission(pass.Info, call); ok {
			emissions = append(emissions, e)
		}
		return true
	})
	if len(emissions) == 0 {
		return
	}
	cfg := BuildCFG(fd.Body)
	for _, e := range emissions {
		hinted := false
		for _, set := range retryAfterSets {
			b := blockContaining(cfg, set)
			if b == nil {
				continue
			}
			if ReachableFrom(cfg, cfg.Reachable(b), e.call) {
				hinted = true
				break
			}
		}
		if hinted {
			continue
		}
		msg := "%d response is written without a Retry-After header on this path; set it (via RetryAfterSeconds) so clients back off instead of hammering"
		if fix, ok := retryAfterFix(pass, fd, e); ok {
			pass.ReportFix(e.call.Pos(), fix, msg, e.status)
		} else {
			pass.Reportf(e.call.Pos(), msg, e.status)
		}
	}
}

// isRetryAfterSet matches X.Set("Retry-After", ...) — the
// http.Header method or anything shaped like it.
func isRetryAfterSet(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Set" || len(call.Args) < 2 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return constant.StringVal(tv.Value) == "Retry-After"
}

// statusEmission matches a response write carrying a constant
// backpressure status: w.WriteHeader(C), or a call to a function one
// of whose parameters is an http.ResponseWriter with some argument a
// constant 429/503/504.
func statusEmission(info *types.Info, call *ast.CallExpr) (emission, bool) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 {
		if t := info.TypeOf(sel.X); t != nil && isResponseWriter(t) {
			if c, ok := constStatus(info, call.Args[0]); ok && retryStatuses[c] {
				return emission{call: call, status: c, writer: sel.X}, true
			}
		}
	}
	fn := callee(info, call)
	if fn == nil {
		return emission{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return emission{}, false
	}
	hasWriter := false
	for i := 0; i < sig.Params().Len(); i++ {
		if isResponseWriter(sig.Params().At(i).Type()) {
			hasWriter = true
		}
	}
	if !hasWriter {
		return emission{}, false
	}
	var writer ast.Expr
	for _, arg := range call.Args {
		if t := info.TypeOf(arg); t != nil && isResponseWriter(t) {
			writer = arg
		}
	}
	for _, arg := range call.Args {
		if c, ok := constStatus(info, arg); ok && retryStatuses[c] {
			return emission{call: call, status: c, writer: writer}, true
		}
	}
	return emission{}, false
}

// retryAfterFix builds the S1 fix: insert a Header().Set line before
// the statement performing the emission. Only offered when the
// writer is a plain identifier and the enclosing statement is found.
func retryAfterFix(pass *Pass, fd *ast.FuncDecl, e emission) (SuggestedFix, bool) {
	id, ok := ast.Unparen(e.writer).(*ast.Ident)
	if !ok {
		return SuggestedFix{}, false
	}
	stmt := enclosingStmt(fd.Body, e.call)
	if stmt == nil {
		return SuggestedFix{}, false
	}
	pos := pass.Fset.Position(stmt.Pos())
	indent := strings.Repeat("\t", max(pos.Column-1, 0))
	text := id.Name + ".Header().Set(\"Retry-After\", \"1\")\n" + indent
	return SuggestedFix{
		Message: "set Retry-After before writing the status",
		Edits:   []TextEdit{pass.InsertBefore(stmt.Pos(), text)},
	}, true
}

// enclosingStmt finds the smallest statement in body containing n.
func enclosingStmt(body *ast.BlockStmt, n ast.Node) ast.Stmt {
	var best ast.Stmt
	ast.Inspect(body, func(c ast.Node) bool {
		s, ok := c.(ast.Stmt)
		if !ok {
			return true
		}
		if s.Pos() <= n.Pos() && n.End() <= s.End() {
			if best == nil || (s.Pos() >= best.Pos() && s.End() <= best.End()) {
				best = s
			}
		}
		return true
	})
	return best
}

// blockContaining finds a CFG block one of whose recorded nodes
// contains n by position.
func blockContaining(cfg *CFG, n ast.Node) *Block {
	var best *Block
	var bestSpan token.Pos = 1 << 30
	for _, b := range cfg.Blocks {
		for _, rec := range b.Nodes {
			if rec.Pos() <= n.Pos() && n.End() <= rec.End() {
				if span := rec.End() - rec.Pos(); token.Pos(span) < bestSpan {
					best, bestSpan = b, token.Pos(span)
				}
			}
		}
	}
	return best
}

// checkRequestErrorLiterals applies S2 to the whole package.
func checkRequestErrorLiterals(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(lit)
			if t == nil || !isRequestErrorType(t) {
				return true
			}
			var status int64
			hasStatus, hasRetryAfter := false, false
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					return true // positional literal: wirestrict territory
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "Status":
					if c, ok := constStatus(pass.Info, kv.Value); ok {
						status, hasStatus = c, true
					}
				case "RetryAfter":
					hasRetryAfter = true
				}
			}
			if !hasStatus || hasRetryAfter || !retryStatuses[status] || len(lit.Elts) == 0 {
				return true
			}
			last := lit.Elts[len(lit.Elts)-1]
			fix := SuggestedFix{
				Message: "populate RetryAfter (seconds)",
				Edits:   []TextEdit{pass.InsertBefore(last.End(), ", RetryAfter: 1")},
			}
			pass.ReportFix(lit.Pos(), fix,
				"RequestError with status %d carries no RetryAfter: the typed error is the wire's backpressure hint, and 0 decodes as \"none\"", status)
			return true
		})
	}
}

// isRequestErrorType matches a named type called RequestError whose
// struct has both Status and RetryAfter fields (pointer-stripped).
func isRequestErrorType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "RequestError" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasStatus, hasRetryAfter := false, false
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "Status":
			hasStatus = true
		case "RetryAfter":
			hasRetryAfter = true
		}
	}
	return hasStatus && hasRetryAfter
}

// checkBreakerClassification applies C1 to one client function.
func checkBreakerClassification(pass *Pass, fd *ast.FuncDecl) {
	var failures []*ast.CallExpr
	classifies := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Failure" {
			failures = append(failures, call)
		}
		if isRequestErrorAs(pass.Info, call) {
			classifies = true
		}
		return true
	})
	if len(failures) == 0 || !classifies {
		return
	}

	// Find the semantic guard: an if condition comparing .Status < 500.
	var guard *ast.IfStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || guard != nil {
			return guard == nil
		}
		if condHasSemanticGuard(pass.Info, ifs.Cond) {
			guard = ifs
			return false
		}
		return true
	})
	if guard == nil {
		pass.Reportf(failures[0].Pos(),
			"breaker Failure() is fed *RequestError outcomes with no semantic guard: compare re.Status < 500 (429 excepted) so a caller's own 4xx cannot open the breaker on a healthy backend")
		return
	}
	if len(guard.Body.List) == 0 {
		return
	}
	cfg := BuildCFG(fd.Body)
	thenBlock := blockContaining(cfg, guard.Body.List[0])
	if thenBlock == nil {
		return
	}
	reach := cfg.Reachable(thenBlock)
	for _, fc := range failures {
		if ReachableFrom(cfg, reach, fc) {
			pass.Reportf(fc.Pos(),
				"Failure() is reachable from the semantic-4xx branch (re.Status < 500): return or record Success there, or a well-formed rejection trips the breaker")
		}
	}
}

// isRequestErrorAs matches errors.As(err, &re) where re is
// *RequestError (of any package defining a Status-carrying type by
// that name).
func isRequestErrorAs(info *types.Info, call *ast.CallExpr) bool {
	if path, name := calleePkgPath(info, call); path != "errors" || name != "As" || len(call.Args) != 2 {
		return false
	}
	t := info.TypeOf(call.Args[1])
	for i := 0; i < 2; i++ {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "RequestError"
}

// condHasSemanticGuard scans a condition for `X.Status < 500`.
func condHasSemanticGuard(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		if bin.Op != token.LSS {
			return true
		}
		sel, ok := ast.Unparen(bin.X).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Status" {
			return true
		}
		if c, ok := constStatus(info, bin.Y); ok && c == 500 {
			found = true
			return false
		}
		return true
	})
	return found
}
