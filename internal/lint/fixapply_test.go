package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"sortnets/internal/lint"
)

// TestHotAllocFix applies the Errorf→errors.New autofix to the
// fixdemo fixture (dry-run) and checks the rewrite: both call sites
// rewritten, the errors import added exactly once, and fmt left alone
// (pruning unused imports is out of the fixer's scope).
func TestHotAllocFix(t *testing.T) {
	dir := filepath.Join("testdata", "fixdemo")
	_, diags := runDir(t, dir, "sortnets/testdata/fixdemo", lint.HotAlloc)
	if len(diags) != 2 {
		t.Fatalf("want 2 constant-format findings, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			t.Fatalf("finding carries no fix: %s", d)
		}
	}
	out, err := lint.DryRunFixes(diags, nil)
	if err != nil {
		t.Fatalf("DryRunFixes: %v", err)
	}
	file := filepath.Join(dir, "fixdemo.go")
	fixed, ok := out[file]
	if !ok {
		t.Fatalf("no fixed content for %s (got %v)", file, keys(out))
	}
	got := string(fixed)
	if n := strings.Count(got, `errors.New("`); n != 2 {
		t.Errorf("want 2 errors.New rewrites, got %d:\n%s", n, got)
	}
	if strings.Contains(got, "fmt.Errorf") {
		t.Errorf("fmt.Errorf survived the fix:\n%s", got)
	}
	if n := strings.Count(got, `import "errors"`); n != 1 {
		t.Errorf("want the errors import added exactly once (both findings dedup to one edit), got %d:\n%s", n, got)
	}
	if !strings.Contains(got, `import "fmt"`) {
		t.Errorf("fix must not touch the existing fmt import:\n%s", got)
	}
}

// TestRetryContractFix applies the serve-side fixes: the bare
// emission gains a Header().Set line and the hintless RequestError
// literal gains RetryAfter.
func TestRetryContractFix(t *testing.T) {
	dir := filepath.Join("testdata", "retrycontract", "serve")
	_, diags := runDir(t, dir, "sortnets/testdata/retrycontract/serve", lint.RetryContract)
	out, err := lint.DryRunFixes(diags, nil)
	if err != nil {
		t.Fatalf("DryRunFixes: %v", err)
	}
	fixed, ok := out[filepath.Join(dir, "serve.go")]
	if !ok {
		t.Fatalf("no fixed content for serve.go (got %v)", keys(out))
	}
	got := string(fixed)
	if !strings.Contains(got, "w.Header().Set(\"Retry-After\", \"1\")\n\tw.WriteHeader(429)") {
		t.Errorf("bare emission did not gain the Set line:\n%s", got)
	}
	if !strings.Contains(got, `&RequestError{Status: 429, Msg: "overloaded", RetryAfter: 1}`) {
		t.Errorf("hintless RequestError literal did not gain RetryAfter:\n%s", got)
	}
	// Already-hinted sites must be untouched: still exactly one
	// RetryAfter per originally-hinted literal.
	if strings.Contains(got, "RetryAfter: 1, RetryAfter") {
		t.Errorf("fix doubled an existing RetryAfter:\n%s", got)
	}
}

// TestApplyEditsSemantics pins the edit-application contract through
// DryRunFixes with an in-memory file: exact duplicates collapse,
// same-offset insertions both apply in sorted order, and genuinely
// overlapping edits abort with an error.
func TestApplyEditsSemantics(t *testing.T) {
	read := func(string) ([]byte, error) { return []byte("hello world"), nil }
	diag := func(edits ...lint.TextEdit) lint.Diagnostic {
		return lint.Diagnostic{Fixes: []lint.SuggestedFix{{Edits: edits}}}
	}
	replace := lint.TextEdit{Filename: "f.go", Start: 0, End: 5, NewText: "goodbye"}

	out, err := lint.DryRunFixes([]lint.Diagnostic{diag(replace), diag(replace)}, read)
	if err != nil {
		t.Fatalf("duplicate edits must collapse, got error: %v", err)
	}
	if got := string(out["f.go"]); got != "goodbye world" {
		t.Errorf("duplicate edits: got %q, want %q", got, "goodbye world")
	}

	insA := lint.TextEdit{Filename: "f.go", Start: 5, End: 5, NewText: "A"}
	insB := lint.TextEdit{Filename: "f.go", Start: 5, End: 5, NewText: "B"}
	out, err = lint.DryRunFixes([]lint.Diagnostic{diag(insA), diag(insB)}, read)
	if err != nil {
		t.Fatalf("same-offset insertions must both apply, got error: %v", err)
	}
	if got := string(out["f.go"]); got != "helloAB world" {
		t.Errorf("same-offset insertions: got %q, want %q", got, "helloAB world")
	}

	overlap := lint.TextEdit{Filename: "f.go", Start: 3, End: 8, NewText: "x"}
	if _, err = lint.DryRunFixes([]lint.Diagnostic{diag(replace), diag(overlap)}, read); err == nil {
		t.Fatalf("overlapping distinct edits must error")
	} else if !strings.Contains(err.Error(), "conflicting") {
		t.Errorf("overlap error should say conflicting, got: %v", err)
	}
}

func keys(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
