package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// The loader: a stdlib-only stand-in for go/packages. It shells out
// to `go list -deps -export -json` once — the go tool compiles every
// package (build-cached) and hands back per-package export-data
// paths — then parses only the target packages' sources and
// type-checks them against the export data through the gc importer.
// That is the same division of labor as go vet's unitchecker driver:
// syntax for the packages under analysis, compiled summaries for
// everything below them, and zero network or module downloads.

// A Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Sizes      types.Sizes
	// TypeErrors holds type-checking problems (go/types soft errors
	// included). Analyzers still run — their results may be partial.
	TypeErrors []error
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matching patterns
// (run from dir; "" means the current directory). Only matched
// packages are returned; their dependencies are consumed as export
// data. Test files are not included — the suite lints the shipping
// code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=Dir,ImportPath,Standard,DepOnly,GoFiles,CgoFiles,Export,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	// Keep go list's encounter order: -deps emits dependencies before
	// dependents, and the facts mechanism (facts.go) relies on target
	// packages being analyzed in that order so a dependency's exported
	// facts are visible when its importers run. Do NOT sort here.

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil && len(t.GoFiles) == 0 {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one listed package. Cgo files are
// fed through as-is (this module has none; if one appears its
// C-dependent parts surface as soft type errors, not a hard failure).
func typecheck(fset *token.FileSet, imp types.Importer, t listedPkg) (*Package, error) {
	var files []*ast.File
	var softErrs []error
	for _, name := range append(append([]string{}, t.GoFiles...), t.CgoFiles...) {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	conf := types.Config{
		Importer: imp,
		Sizes:    sizes,
		Error:    func(err error) { softErrs = append(softErrs, err) },
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("%s: %w", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Sizes:      sizes,
		TypeErrors: softErrs,
	}, nil
}

// TypeErrorsJoined collapses a package's soft type errors into one
// error, or nil.
func (p *Package) TypeErrorsJoined() error {
	if len(p.TypeErrors) == 0 {
		return nil
	}
	return errors.Join(p.TypeErrors...)
}
