package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// HotAlloc enforces the zero-alloc serve-path contract (PR 6): a
// function annotated `//sortnets:hotpath` — the hand-rolled wire
// codec, the NDJSON chunk pipeline, the eval kernels — must not call
// into the allocation denylist:
//
//   - anything in encoding/json (the codec exists to avoid it),
//   - anything in fmt (Sprintf/Errorf allocate; error paths belong in
//     unannotated helpers),
//   - anything in reflect or regexp,
//   - strconv's string-returning formatters (Format*, Itoa, Quote*) —
//     the Append* variants write into the caller's buffer,
//   - string(b) / []byte(s) conversions (each copies),
//   - non-constant string concatenation.
//
// The denylist is intentionally syntactic and local: it does not
// chase calls into unannotated helpers, so a hot path is annotated
// function by function (helpers included) and cold error branches
// live in unannotated functions.
//
// One sub-rule applies everywhere, annotation or not: a fmt.Sprintf /
// fmt.Errorf whose arguments are all compile-time constants formats
// the identical string on every call — precompute the message in a
// package-level var (or use errors.New). Beyond the waste, such sites
// are usually per-request error paths a client can drive at line rate.
var HotAlloc = &Analyzer{
	Name:    "hotalloc",
	Doc:     "//sortnets:hotpath functions must not call allocating denylist functions (encoding/json, fmt, string conversions, …)",
	Version: "2", // 2: constant-format Errorf findings carry an errors.New autofix
	Run:     runHotAlloc,
}

const hotPathDirective = "//sortnets:hotpath"

// hotDeniedPkgs are wholly denied import paths.
var hotDeniedPkgs = map[string]string{
	"encoding/json": "the hot path is encoding/json-free by contract; use the hand-rolled wire codec",
	"fmt":           "fmt allocates; move formatting to a cold helper or use append-style encoding",
	"reflect":       "reflection allocates and defeats devirtualization",
	"regexp":        "regexp allocates; hot paths match bytes by hand",
}

func runHotAlloc(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		if hasDirective(fd.Doc, hotPathDirective) {
			checkHotBody(pass, fd)
		}
	}
	checkConstantFormat(pass)
	return nil
}

// checkConstantFormat flags fmt.Sprintf / fmt.Errorf calls whose
// arguments are all compile-time constants — the result never varies,
// so the formatting (and its allocation) belongs in a package-level
// var, not on the call path. Package-level var initializers are
// exempt: running the format once at init IS the recommended fix.
//
// The single-argument verb-free Errorf form carries an autofix:
// fmt.Errorf("msg") is errors.New("msg") exactly, so -fix rewrites
// the callee and adds the errors import if missing. (-fix does not
// prune a now-unused fmt import; gofmt-adjacent tooling or the
// compiler error makes that removal obvious.)
func checkConstantFormat(pass *Pass) {
	for _, file := range pass.Files {
		file := file
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || call.Ellipsis.IsValid() {
					return true
				}
				pkgPath, fnName := calleePkgPath(pass.Info, call)
				if pkgPath != "fmt" || (fnName != "Sprintf" && fnName != "Errorf") {
					return true
				}
				for _, arg := range call.Args {
					tv, ok := pass.Info.Types[arg]
					if !ok || tv.Value == nil {
						return true
					}
				}
				if fnName == "Errorf" {
					if fix, ok := errorsNewFix(pass, file, call); ok {
						pass.ReportFix(call.Pos(), fix,
							"fmt.Errorf formats only constants and returns the same value on every call; use errors.New (or a package-level error var)")
						return true
					}
					pass.Reportf(call.Pos(),
						"fmt.Errorf formats only constants and returns the same value on every call; use errors.New (or a package-level error var)")
					return true
				}
				pass.Reportf(call.Pos(),
					"fmt.Sprintf formats only constants and returns the same value on every call; precompute it in a package-level var")
				return true
			})
		}
	}
}

// errorsNewFix builds the Errorf→errors.New rewrite when the call is
// the single-argument form whose constant string contains no format
// verb (so the text passes through unchanged).
func errorsNewFix(pass *Pass, file *ast.File, call *ast.CallExpr) (SuggestedFix, bool) {
	if len(call.Args) != 1 {
		return SuggestedFix{}, false
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return SuggestedFix{}, false
	}
	if strings.ContainsRune(constant.StringVal(tv.Value), '%') {
		return SuggestedFix{}, false
	}
	edits := []TextEdit{pass.Edit(call.Fun.Pos(), call.Fun.End(), "errors.New")}
	if imp := importEdit(pass, file, "errors"); imp != nil {
		edits = append(edits, *imp)
	}
	return SuggestedFix{Message: "replace with errors.New", Edits: edits}, true
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// String-concat chains parse as left-nested BinaryExprs; collect
	// operand nodes so a+b+c reports once, at the outermost add.
	innerAdds := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if bin, ok := n.(*ast.BinaryExpr); ok && isStringAdd(pass.Info, bin) {
			if x, ok := ast.Unparen(bin.X).(*ast.BinaryExpr); ok && isStringAdd(pass.Info, x) {
				innerAdds[x] = true
			}
			if y, ok := ast.Unparen(bin.Y).(*ast.BinaryExpr); ok && isStringAdd(pass.Info, y) {
				innerAdds[y] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
				checkHotConversion(pass, name, n, tv.Type)
				return true
			}
			pkgPath, fnName := calleePkgPath(pass.Info, n)
			if reason, denied := hotDeniedPkgs[pkgPath]; denied {
				pass.Reportf(n.Pos(), "%s is %s but calls %s.%s: %s",
					name, hotPathDirective, pkgPath, fnName, reason)
				return true
			}
			if pkgPath == "strconv" && strconvAllocates(fnName) {
				pass.Reportf(n.Pos(), "%s is %s but calls strconv.%s, which returns a fresh string; use the strconv.Append* form into the caller's buffer",
					name, hotPathDirective, fnName)
			}
		case *ast.BinaryExpr:
			if isStringAdd(pass.Info, n) && !innerAdds[n] {
				pass.Reportf(n.Pos(), "%s is %s but concatenates strings, which allocates; append into a reused []byte instead",
					name, hotPathDirective)
			}
		}
		return true
	})
}

// checkHotConversion flags string(b) and []byte(s) conversions, each
// of which copies its operand.
func checkHotConversion(pass *Pass, fname string, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	argTV, ok := pass.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	// Constant-folded conversions (string of a constant) don't
	// allocate at run time.
	if argTV.Value != nil {
		return
	}
	switch {
	case isString(target) && isByteSlice(argTV.Type):
		pass.Reportf(call.Pos(), "%s is %s but converts []byte to string, which copies; keep the bytes or intern through a cache",
			fname, hotPathDirective)
	case isByteSlice(target) && isString(argTV.Type):
		pass.Reportf(call.Pos(), "%s is %s but converts string to []byte, which copies; append the string into the buffer instead",
			fname, hotPathDirective)
	}
}

// strconvAllocates reports whether the strconv function returns a
// freshly allocated string (vs. the Append/Parse families).
func strconvAllocates(name string) bool {
	return strings.HasPrefix(name, "Format") ||
		strings.HasPrefix(name, "Quote") ||
		name == "Itoa"
}

// isStringAdd reports a non-constant string concatenation.
func isStringAdd(info *types.Info, bin *ast.BinaryExpr) bool {
	if bin.Op.String() != "+" {
		return false
	}
	tv, ok := info.Types[bin]
	if !ok || tv.Type == nil || !isString(tv.Type) {
		return false
	}
	return tv.Value == nil // constant folds are free
}
