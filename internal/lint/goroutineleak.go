package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLeak requires every `go` statement in the resilience
// packages to carry a PROVABLE join: the goroutine's lifetime must be
// visibly bounded at the launch site, because a leaked probe, hedge,
// or peer-fill goroutine survives its request and accumulates under
// exactly the failure conditions (dead backends, slow peers) the
// resilience plane exists to absorb. Accepted evidence, in the order
// it is searched:
//
//  1. WaitGroup pairing — the goroutine body (a func literal, or the
//     resolved body of a same-package function/method it calls) runs
//     Done() on a WaitGroup that the package both Add()s and Wait()s.
//  2. Done-channel join — the body sends on (or closes) a channel the
//     package receives from outside the goroutine, or one created
//     with a constant buffer ≥ 1 in the launching function (the send
//     can never block, so the goroutine always terminates).
//  3. Ctx/stop bound — the body consults ctx.Done()/ctx.Err() on a
//     context.Context, or receives from a channel the package
//     close()s somewhere (the stop-channel idiom).
//  4. Cross-package fact — the launched function carries a
//     goroutineleak fact exported by its defining package recording
//     that it is ctx-bounded.
//
// A launch that is deliberately fire-and-forget (client.Stream's
// producer, which documents why it must NOT be awaited) is silenced
// with //lint:ignore goroutineleak <reason> — the reason is the
// reviewable artifact.
var GoroutineLeak = &Analyzer{
	Name:    "goroutineleak",
	Doc:     "every go statement in client/serve/chaos/search needs a provable join (WaitGroup, done-channel, or ctx bound)",
	Version: "1",
	Run:     runGoroutineLeak,
}

// GoroutineLeakScope selects the packages whose go statements must
// prove their joins: the resilience-critical layers. Facts are
// exported for every package regardless, so in-scope packages can
// judge launches of out-of-scope functions.
var GoroutineLeakScope = func(path string) bool {
	for _, suffix := range []string{"client", "internal/serve", "internal/chaos", "internal/search"} {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

// goroutineFact is the cross-package summary: the function bounds its
// own lifetime on its context argument, so launching it as a
// goroutine is launching something that dies with its ctx.
type goroutineFact struct {
	CtxBounded bool `json:"ctx_bounded,omitempty"`
}

func runGoroutineLeak(pass *Pass) error {
	decls := funcDeclOf(pass)
	for fn, fd := range decls {
		if funcCtxBounded(pass, fd) {
			pass.ExportFact(FuncSymbol(fn), goroutineFact{CtxBounded: true})
		}
	}
	if !GoroutineLeakScope(pass.Pkg.Path()) {
		return nil
	}

	ev := gatherJoinEvidence(pass)
	for _, fd := range funcDecls(pass.Files) {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goStmtJoined(pass, ev, decls, fd, g) {
				pass.Reportf(g.Pos(),
					"goroutine has no provable join: pair it with a WaitGroup Add/Done+Wait, a done-channel the launcher receives (or a buffered one), or bound it on ctx/stop cancellation")
			}
			return true
		})
	}
	return nil
}

// joinEvidence is the package-wide synchronization inventory the
// per-launch judgement consults.
type joinEvidence struct {
	wgAdds   map[types.Object]bool // WaitGroups Add()ed anywhere
	wgWaits  map[types.Object]bool // WaitGroups Wait()ed anywhere
	closed   map[types.Object]bool // channels close()d anywhere
	receives []ast.Node            // every receive/range over a channel, with its resolved object
	recvObjs []types.Object
}

func gatherJoinEvidence(pass *Pass) *joinEvidence {
	ev := &joinEvidence{
		wgAdds:  make(map[types.Object]bool),
		wgWaits: make(map[types.Object]bool),
		closed:  make(map[types.Object]bool),
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if obj, method := syncGroupCall(pass.Info, n); obj != nil {
					switch method {
					case "Add":
						ev.wgAdds[obj] = true
					case "Wait":
						ev.wgWaits[obj] = true
					}
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						if obj := selectorObj(pass.Info, n.Args[0]); obj != nil {
							ev.closed[obj] = true
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if obj := selectorObj(pass.Info, n.X); obj != nil {
						ev.receives = append(ev.receives, n)
						ev.recvObjs = append(ev.recvObjs, obj)
					}
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						if obj := selectorObj(pass.Info, n.X); obj != nil {
							ev.receives = append(ev.receives, n.X)
							ev.recvObjs = append(ev.recvObjs, obj)
						}
					}
				}
			}
			return true
		})
	}
	return ev
}

// syncGroupCall matches X.Method() where X is a sync.WaitGroup,
// returning the WaitGroup's stable object and the method name.
func syncGroupCall(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isNamedType(recv.Type(), "sync", "WaitGroup") {
		return nil, ""
	}
	return selectorObj(info, sel.X), fn.Name()
}

// goStmtJoined judges one launch against the evidence classes.
func goStmtJoined(pass *Pass, ev *joinEvidence, decls map[*types.Func]*ast.FuncDecl, fd *ast.FuncDecl, g *ast.GoStmt) bool {
	// Resolve what actually runs: the func literal's body, or the
	// same-package body of the named function/method being launched.
	var bodies []ast.Node
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		bodies = append(bodies, lit.Body)
	} else if fn := callee(pass.Info, g.Call); fn != nil {
		// Class 4: a fact from the callee's package (or an earlier
		// export by this pass over this very package).
		var fact goroutineFact
		if pass.ImportFact(FuncSymbol(fn), &fact) && fact.CtxBounded {
			return true
		}
		if dfd, ok := decls[fn]; ok {
			bodies = append(bodies, dfd.Body)
		}
	}
	if len(bodies) == 0 {
		return false
	}
	for _, body := range bodies {
		// Class 1: WaitGroup pairing.
		if wg := doneTarget(pass.Info, body); wg != nil && ev.wgAdds[wg] && ev.wgWaits[wg] {
			return true
		}
		// Class 3: ctx/stop bound.
		if ctxBoundedBody(pass, ev, body) {
			return true
		}
		// Class 2: done-channel join.
		for _, ch := range sendTargets(pass.Info, body) {
			if receivedOutside(pass, ev, ch, g) {
				return true
			}
			if capN, ok := chanMakeCap(pass.Info, fd.Body, ch); ok && capN >= 1 {
				return true
			}
		}
	}
	return false
}

// doneTarget finds a WaitGroup whose Done() the body calls (directly
// or deferred).
func doneTarget(info *types.Info, body ast.Node) types.Object {
	var found types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if obj, method := syncGroupCall(info, call); obj != nil && method == "Done" {
				found = obj
				return false
			}
		}
		return true
	})
	return found
}

// sendTargets lists the channel objects the body sends on or closes.
func sendTargets(info *types.Info, body ast.Node) []types.Object {
	var out []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := selectorObj(info, n.Chan); obj != nil {
				out = append(out, obj)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if obj := selectorObj(info, n.Args[0]); obj != nil {
						out = append(out, obj)
					}
				}
			}
		}
		return true
	})
	return out
}

// ctxBoundedBody reports whether the body consults a context's
// Done()/Err(), or receives from a channel the package close()s.
func ctxBoundedBody(pass *Pass, ev *joinEvidence, body ast.Node) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if name := sel.Sel.Name; name == "Done" || name == "Err" {
					if t := pass.Info.TypeOf(sel.X); t != nil && isContextType(t) {
						bounded = true
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := selectorObj(pass.Info, n.X); obj != nil && ev.closed[obj] {
					bounded = true
					return false
				}
			}
		}
		return true
	})
	return bounded
}

// receivedOutside reports whether the package receives from ch at a
// position outside the go statement itself (the launcher — or anyone
// — consuming the goroutine's completion signal).
func receivedOutside(pass *Pass, ev *joinEvidence, ch types.Object, g *ast.GoStmt) bool {
	for i, n := range ev.receives {
		if ev.recvObjs[i] != ch {
			continue
		}
		if n.Pos() >= g.Pos() && n.End() <= g.End() {
			continue // the goroutine's own receive is not a join
		}
		return true
	}
	return false
}

// funcCtxBounded reports whether the declared function bounds itself
// on a context.Context parameter (Done or Err consulted anywhere).
func funcCtxBounded(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	hasCtxParam := false
	for _, field := range fd.Type.Params.List {
		if t := pass.Info.TypeOf(field.Type); t != nil && isContextType(t) {
			hasCtxParam = true
		}
	}
	if !hasCtxParam {
		return false
	}
	ev := &joinEvidence{closed: map[types.Object]bool{}}
	return ctxBoundedBody(pass, ev, fd.Body)
}

// isNamedType reports whether t (pointer-stripped) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
