package lint

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"strings"
)

// StatsCover closes the observability loop the other analyzers assume
// exists: a counter nobody can see is a counter nobody will notice
// regressing. Two rules, both scoped to the stats-bearing packages
// (client and internal/serve):
//
//   - Rule A: every atomic counter field of a package-level struct —
//     a typed sync/atomic.IntN/UintN/Bool field, or a raw integer
//     field carrying an atomicfield fact — must be Load()ed inside
//     some function whose name mentions stats or snapshot. A counter
//     that is only ever incremented is write-only telemetry: the
//     increment costs a cache line on the hot path and buys nothing.
//     Deliberate non-counters (the round-robin cursor) are silenced
//     with //lint:ignore statscover <reason>.
//
//   - Rule B: every json-tagged field of a *Stats/*Snapshot struct
//     must appear (by tag key) in the nearest README.md above the
//     package directory. The README's /stats table is the operator
//     contract; a key that ships undocumented is invisible to the
//     person staring at a dashboard mid-incident. Skipped silently
//     when no README exists (fixture trees carry their own).
var StatsCover = &Analyzer{
	Name:    "statscover",
	Doc:     "atomic counters must surface in a stats/snapshot function and documented /stats JSON keys",
	Version: "1",
	Run:     runStatsCover,
}

// StatsCoverScope selects the packages whose counters form the
// operator-facing stats surface.
var StatsCoverScope = func(path string) bool {
	for _, suffix := range []string{"client", "serve"} {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

func runStatsCover(pass *Pass) error {
	if !StatsCoverScope(pass.Pkg.Path()) {
		return nil
	}
	checkCounterSurfacing(pass)
	checkREADMEKeys(pass)
	return nil
}

// atomicTypedField reports whether t is one of the typed sync/atomic
// counter wrappers.
func atomicTypedField(t types.Type) bool {
	for _, name := range []string{"Int32", "Int64", "Uint32", "Uint64", "Bool", "Uintptr"} {
		if isNamedType(t, "sync/atomic", name) {
			return true
		}
	}
	return false
}

// checkCounterSurfacing applies rule A.
func checkCounterSurfacing(pass *Pass) {
	// Atomic counter fields of package-scope named structs. Struct
	// fields only: package-level atomics (pooledBytes) have accessor
	// functions as their surface and are out of rule A's shape.
	counters := make(map[*types.Var]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if atomicTypedField(fld.Type()) {
				counters[fld] = true
				continue
			}
			var fact struct {
				Atomic bool `json:"atomic"`
			}
			if sym := FieldSymbol(pass.Pkg, fld); sym != "" &&
				pass.ImportFactOf("atomicfield", sym, &fact) && fact.Atomic {
				counters[fld] = true
			}
		}
	}
	if len(counters) == 0 {
		return
	}

	// A field is surfaced when a stats/snapshot-named function reads
	// it: fld.Load() on a typed atomic, or atomic.LoadX(&s.fld).
	surfaced := make(map[*types.Var]bool)
	for _, fd := range funcDecls(pass.Files) {
		lower := strings.ToLower(fd.Name.Name)
		if !strings.Contains(lower, "stats") && !strings.Contains(lower, "snapshot") {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Load" {
				if obj, ok := selectorObj(pass.Info, sel.X).(*types.Var); ok {
					surfaced[obj] = true
				}
			}
			if path, name := calleePkgPath(pass.Info, call); path == "sync/atomic" &&
				isAtomicAccessor(name) && strings.HasPrefix(name, "Load") && len(call.Args) > 0 {
				if fld, _ := addressedField(pass.Info, call.Args[0]); fld != nil {
					surfaced[fld] = true
				}
			}
			return true
		})
	}

	for fld := range counters {
		if surfaced[fld] {
			continue
		}
		// Only report fields declared in this package's sources (the
		// scope walk can reach embedded foreign structs).
		if fld.Pkg() != pass.Pkg {
			continue
		}
		pass.Reportf(fld.Pos(),
			"atomic counter %s is never Load()ed in a stats/snapshot function: write-only telemetry pays the cache-line cost and surfaces nothing — expose it in the stats snapshot or drop it",
			fld.Name())
	}
}

// checkREADMEKeys applies rule B: json keys of *Stats/*Snapshot
// structs must appear in the nearest README.md.
func checkREADMEKeys(pass *Pass) {
	readme, ok := nearestREADME(pass.Dir)
	if !ok {
		return
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasSuffix(name, "Stats") && !strings.HasSuffix(name, "Snapshot") {
			continue
		}
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if !fld.Exported() {
				continue
			}
			key, _, _ := strings.Cut(reflect.StructTag(st.Tag(i)).Get("json"), ",")
			if key == "" || key == "-" {
				continue
			}
			if strings.Contains(readme, key) {
				continue
			}
			pass.Reportf(fld.Pos(),
				"stats key %q (%s.%s) is not documented in README.md: the /stats table is the operator contract — add the key or drop the field",
				key, name, fld.Name())
		}
	}
}

// nearestREADME walks up from dir looking for a README.md (at most 8
// levels, so fixture trees can carry their own and repo runs find the
// module root's).
func nearestREADME(dir string) (string, bool) {
	for i := 0; i < 8 && dir != "" && dir != "/" && dir != "."; i++ {
		data, err := os.ReadFile(filepath.Join(dir, "README.md"))
		if err == nil {
			return string(data), true
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return "", false
}
