package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolSafe enforces the pooled-scratch contract (PRs 5–6): every
// sync.Pool.Get is balanced by a reachable Put, pooled scratch is
// reset somewhere on its get/put cycle, and pooled values never leak
// into goroutines.
//
// The checks are function-local with wrapper awareness, matching how
// this repo actually pools:
//
//   - a Get whose result is Put in the same function (defer included)
//     is balanced;
//   - a Get whose result is returned makes the function a checkout
//     wrapper (getScratch, getWideBlock) — its callers own the value;
//   - a Get whose result is passed to a same-package function that
//     Puts the corresponding parameter is handed off;
//   - anything else — a dropped Get, or a Get discarded as an
//     expression statement — is a leak diagnostic.
//
// Put arguments must be pointer-shaped: putting a bare slice or
// struct value boxes it into the Pool's any parameter, allocating on
// the path the pool exists to keep allocation-free (staticcheck's
// SA6002, enforced here without the dependency).
//
// Reset discipline is checked per pool: at least one function that
// gets or puts from the pool must reset the scratch (a Reset call, a
// [:0]-style reslice, or a zeroing assignment) — a pool whose values
// are never reset anywhere leaks request state between borrowers.
var PoolSafe = &Analyzer{
	Name:    "poolsafe",
	Doc:     "sync.Pool Get/Put balance, pointer-shaped Put values, reset-before-reuse, no goroutine escape",
	Version: "1",
	Run:     runPoolSafe,
}

func runPoolSafe(pass *Pass) error {
	// Pass A: which parameters of which functions are Put (making the
	// function a put-wrapper a caller can hand a pooled value to).
	putParams := make(map[*types.Func]map[int]bool)
	decls := funcDecls(pass.Files)
	for _, fd := range decls {
		fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		params := paramObjs(pass.Info, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if method, _ := poolCall(pass.Info, call); method == "Put" && len(call.Args) == 1 {
				if obj := rootObj(pass.Info, call.Args[0]); obj != nil {
					for i, p := range params {
						if obj == p {
							if putParams[fn] == nil {
								putParams[fn] = make(map[int]bool)
							}
							putParams[fn][i] = true
						}
					}
				}
			}
			return true
		})
	}

	// Pass B: per-function Get/Put bookkeeping.
	type poolState struct {
		firstPut  token.Pos
		hasPut    bool
		hasGet    bool
		resetSeen bool
	}
	pools := make(map[types.Object]*poolState)
	stateOf := func(obj types.Object) *poolState {
		if obj == nil {
			return &poolState{} // throwaway: unidentifiable pool expression
		}
		st := pools[obj]
		if st == nil {
			st = &poolState{}
			pools[obj] = st
		}
		return st
	}

	for _, fd := range decls {
		touched := false // this function gets or puts from some pool
		pooled := make(map[types.Object]*ast.CallExpr)
		released := make(map[types.Object]bool)

		// B1: collect Gets (and their bound variables) and Puts.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if method, poolObj := poolCall(pass.Info, call); method == "Get" {
						touched = true
						stateOf(poolObj).hasGet = true
						pass.Reportf(call.Pos(), "result of sync.Pool.Get is discarded; the pooled value leaks")
						return false
					}
				}
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 {
					if call := getCallOf(pass.Info, n.Rhs[0]); call != nil {
						_, poolObj := poolCall(pass.Info, call)
						touched = true
						stateOf(poolObj).hasGet = true
						if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
							if obj := pass.Info.ObjectOf(id); obj != nil {
								pooled[obj] = call
							}
						} else {
							pass.Reportf(call.Pos(), "result of sync.Pool.Get is not bound to a variable; the pooled value leaks")
						}
						return true
					}
				}
			case *ast.CallExpr:
				if method, poolObj := poolCall(pass.Info, n); method == "Put" && len(n.Args) == 1 {
					touched = true
					st := stateOf(poolObj)
					st.hasPut = true
					if !st.firstPut.IsValid() {
						st.firstPut = n.Pos()
					}
					checkPutShape(pass, n)
					if obj := rootObj(pass.Info, n.Args[0]); obj != nil {
						released[obj] = true
					}
				}
			}
			return true
		})

		// B2: releases via return or handoff to a put-wrapper; escapes
		// into goroutines.
		if len(pooled) > 0 {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						if obj := pass.Info.ObjectOf(identOf(res)); obj != nil {
							if _, ok := pooled[obj]; ok {
								released[obj] = true
							}
						}
					}
				case *ast.CallExpr:
					fn := callee(pass.Info, n)
					if fn == nil || putParams[fn] == nil {
						return true
					}
					for i, arg := range n.Args {
						if obj := pass.Info.ObjectOf(identOf(arg)); obj != nil && putParams[fn][i] {
							if _, ok := pooled[obj]; ok {
								released[obj] = true
							}
						}
					}
				case *ast.GoStmt:
					if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
						for obj, get := range pooled {
							if usesObj(pass.Info, lit.Body, obj) {
								pass.Reportf(get.Pos(),
									"pooled value %s is captured by a goroutine launched in the same function; it may be Put (and re-Gotten) while the goroutine still uses it",
									obj.Name())
							}
						}
					}
				}
				return true
			})
			for obj, get := range pooled {
				if !released[obj] {
					pass.Reportf(get.Pos(),
						"sync.Pool.Get of %s has no reachable Put: not put back, not returned, not handed to a putting function",
						obj.Name())
				}
			}
		}

		// B3: reset evidence, credited to every pool this function
		// touches (reset-at-Get and reset-at-Put are both valid
		// disciplines; what matters is that the cycle resets at all).
		if touched && hasResetEvidence(pass.Info, fd.Body) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if method, poolObj := poolCall(pass.Info, call); method != "" && poolObj != nil {
						stateOf(poolObj).resetSeen = true
					}
				}
				return true
			})
		}
	}

	for obj, st := range pools {
		if st.hasPut && !st.resetSeen {
			pass.Reportf(st.firstPut,
				"pool %s: no function that Gets or Puts from it ever resets the pooled scratch; reset (Reset call, [:0] reslice, or zeroing) before reuse or state leaks between borrowers",
				obj.Name())
		}
	}
	return nil
}

// poolCall classifies call as a sync.Pool Get/Put and identifies the
// pool (the variable or field the method is called on). method is ""
// for non-pool calls.
func poolCall(info *types.Info, call *ast.CallExpr) (method string, pool types.Object) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
		return "", nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return "", nil
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "Pool" {
		return "", nil
	}
	return sel.Sel.Name, poolIdentity(info, sel.X)
}

// poolIdentity names the pool: the object of the receiver variable,
// struct field, or array element base the Get/Put is called on.
func poolIdentity(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.Ident:
		return info.ObjectOf(v)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok {
			return sel.Obj()
		}
		return info.ObjectOf(v.Sel)
	case *ast.IndexExpr:
		return poolIdentity(info, v.X)
	case *ast.StarExpr:
		return poolIdentity(info, v.X)
	case *ast.UnaryExpr:
		return poolIdentity(info, v.X)
	}
	return nil
}

// getCallOf unwraps expr (through a type assertion) to a sync.Pool
// Get call, or nil.
func getCallOf(info *types.Info, expr ast.Expr) *ast.CallExpr {
	e := ast.Unparen(expr)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if method, _ := poolCall(info, call); method != "Get" {
		return nil
	}
	return call
}

// checkPutShape flags Put of non-pointer-shaped values (SA6002): the
// value is boxed into Put's `any` parameter, allocating per Put.
func checkPutShape(pass *Pass, put *ast.CallExpr) {
	tv, ok := pass.Info.Types[put.Args[0]]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return
	}
	pass.Reportf(put.Pos(),
		"sync.Pool.Put of a non-pointer value (%s) allocates an interface box per Put; pool a pointer to the buffer instead",
		tv.Type.String())
}

// hasResetEvidence reports whether the body performs any reset-ish
// operation: a Reset(...) method call, a reslice assignment
// (x = y[:...]), or a zeroing assignment (*x = T{} / x.f = nil).
func hasResetEvidence(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Reset" {
				found = true
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				switch r := ast.Unparen(rhs).(type) {
				case *ast.SliceExpr:
					found = true
				case *ast.CompositeLit:
					if len(r.Elts) == 0 {
						found = true
					}
				case *ast.Ident:
					if r.Name == "nil" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// paramObjs returns fd's parameter objects in declaration order
// (blank parameters are nil placeholders so indexes line up).
func paramObjs(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// identOf unwraps expr to a plain identifier, or nil.
func identOf(expr ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(expr).(*ast.Ident)
	return id
}

// usesObj reports whether body references obj.
func usesObj(info *types.Info, body ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
