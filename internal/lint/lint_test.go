package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"sortnets/internal/lint"
	"sortnets/internal/lint/linttest"
)

// TestCtxLoop runs the ctxloop fixture under an in-scope import path
// so the sibling-bypass and ctx-forwarding rules fire.
func TestCtxLoop(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "ctxloop"), "sortnets/internal/eval", lint.CtxLoop)
}

// TestCtxLoopOutOfScope reruns the same fixture under an out-of-scope
// path: only the annotation-driven rule may fire, so the scoped-rule
// wants become the assertion that they did NOT.
func TestCtxLoopOutOfScope(t *testing.T) {
	pkg, diags := runDir(t, filepath.Join("testdata", "ctxloop"), "example.com/outofscope", lint.CtxLoop)
	_ = pkg
	for _, d := range diags {
		if strings.Contains(d.Message, "Ctx variant") || strings.Contains(d.Message, "never consults or forwards") {
			t.Errorf("scoped rule fired outside CtxLoopScope: %s", d)
		}
	}
	// The annotation rule still applies everywhere.
	if len(diags) == 0 {
		t.Fatalf("annotation rule should fire out of scope too")
	}
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "hotalloc"), "sortnets/testdata/hotalloc", lint.HotAlloc)
}

func TestPoolSafe(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "poolsafe"), "sortnets/testdata/poolsafe", lint.PoolSafe)
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "atomicfield"), "sortnets/testdata/atomicfield", lint.AtomicField)
}

func TestWireStrict(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "wirestrict"), "sortnets/testdata/wirestrict", lint.WireStrict)
}

// TestGoroutineLeak: the fixture import path ends in /client, so
// every launch is in scope; each function demonstrates one join
// evidence class or its absence.
func TestGoroutineLeak(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "goroutineleak", "client"), "sortnets/testdata/goroutineleak/client", lint.GoroutineLeak)
}

// TestLockOrder runs atomicfield first so the discipline-mixing rule
// has the per-field facts it consumes.
func TestLockOrder(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "lockorder"), "sortnets/testdata/lockorder", lint.AtomicField, lint.LockOrder)
}

func TestRetryContractServe(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "retrycontract", "serve"), "sortnets/testdata/retrycontract/serve", lint.RetryContract)
}

func TestRetryContractClient(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "retrycontract", "client"), "sortnets/testdata/retrycontract/client", lint.RetryContract)
}

// TestStatsCover: the fixture directory carries its own README.md,
// so rule B's nearest-README walk stops there instead of reaching the
// repo's.
func TestStatsCover(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "statscover", "serve"), "sortnets/testdata/statscover/serve", lint.AtomicField, lint.StatsCover)
}

// TestCrossPackageFacts drives the two-package fixture in dependency
// order with one shared fact store: the client half's judgements — a
// launch excused by dep's ctx-bounded fact, a lock cycle that only
// exists in the union of both packages' edges — depend on facts this
// file cannot see.
func TestCrossPackageFacts(t *testing.T) {
	linttest.RunPkgs(t, []linttest.FixturePkg{
		{Dir: filepath.Join("testdata", "xfacts", "dep"), ImportPath: "sortnets/testdata/xfacts/dep"},
		{Dir: filepath.Join("testdata", "xfacts", "client"), ImportPath: "sortnets/testdata/xfacts/client"},
	}, lint.GoroutineLeak, lint.LockOrder)
}

// TestSuppressions: documented //lint:ignore comments (both
// placements, list and all forms) silence the finding entirely.
func TestSuppressions(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "suppress"), "sortnets/testdata/suppress", lint.All()...)
}

// TestSuppressionNeedsReason: a reason-less //lint:ignore is itself a
// diagnostic and does NOT suppress the finding below it.
func TestSuppressionNeedsReason(t *testing.T) {
	_, diags := runDir(t, filepath.Join("testdata", "badsuppress"), "sortnets/testdata/badsuppress", lint.All()...)
	var sawMalformed, sawSurvivor bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "lint" && strings.Contains(d.Message, "needs a reason"):
			sawMalformed = true
		case d.Analyzer == "hotalloc":
			sawSurvivor = true
		}
	}
	if !sawMalformed {
		t.Errorf("reason-less //lint:ignore was not reported; diags: %v", diags)
	}
	if !sawSurvivor {
		t.Errorf("reason-less //lint:ignore still suppressed the finding; diags: %v", diags)
	}
	if len(diags) != 2 {
		t.Errorf("want exactly 2 diagnostics (malformed + survivor), got %d: %v", len(diags), diags)
	}
}

// TestRepoClean is the smoke test the CI lint step depends on: the
// full suite over the whole module is clean at HEAD. Any committed
// finding must be fixed or carry a documented suppression.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint runs go list; skipped in -short")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	// One shared fact store across the dependency-ordered package list,
	// exactly like the sortnetlint CLI: the interprocedural analyzers
	// only see their cross-package facts this way.
	facts := lint.NewFacts()
	for _, pkg := range pkgs {
		if terr := pkg.TypeErrorsJoined(); terr != nil {
			t.Errorf("%s: type errors: %v", pkg.ImportPath, terr)
		}
		diags, err := lint.RunAnalyzersFacts(pkg, lint.All(), facts)
		if err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("finding at HEAD: %s", d)
		}
	}
}

// runDir loads a fixture without want matching, for tests that assert
// on the raw diagnostic list.
func runDir(t *testing.T, dir, importPath string, analyzers ...*lint.Analyzer) (*lint.Package, []lint.Diagnostic) {
	t.Helper()
	pkg, err := linttest.LoadFixture(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	return pkg, diags
}
