package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// The dataflow core: a statement-granularity control-flow graph over
// the parsed (and go/types-resolved) bodies, plus the def-use helpers
// the flow-sensitive analyzers share. It is deliberately lightweight —
// no SSA, no values, just "which statements can run after which" —
// because the properties the suite proves (a Failure call reachable
// from a semantic-4xx branch, a goroutine launch with no join on any
// path, a lock held across a call) are reachability questions, not
// value questions. Analyzers that outgrow it port to x/tools/go/cfg
// mechanically; the Block/Succs shape is the same.

// A Block is a straight-line run of statements with explicit
// successor edges. Cond expressions of if/for/switch live in the
// block that evaluates them.
type Block struct {
	Nodes []ast.Node
	Succs []*Block
}

// A CFG is one function body's control-flow graph. Entry is the
// first block; blocks with no successors end the function (return,
// panic-free fallthrough, or a terminal branch).
type CFG struct {
	Entry  *Block
	Blocks []*Block

	// stmtBlock maps every recorded statement (and recorded cond
	// expression) to its block.
	stmtBlock map[ast.Node]*Block
}

// BuildCFG builds the graph for one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{stmtBlock: make(map[ast.Node]*Block)}
	entry := c.newBlock()
	c.Entry = entry
	c.buildStmts(entry, body.List, nil, nil)
	return c
}

func (c *CFG) newBlock() *Block {
	b := &Block{}
	c.Blocks = append(c.Blocks, b)
	return b
}

func (c *CFG) add(b *Block, n ast.Node) {
	b.Nodes = append(b.Nodes, n)
	c.stmtBlock[n] = b
}

func link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// buildStmts threads stmts through cur, returning the block control
// falls out of (nil when every path returned or broke away).
// brk/cont are the innermost loop/switch targets for unlabeled
// break/continue; labeled branches are handled best-effort by
// treating them like their unlabeled forms.
func (c *CFG) buildStmts(cur *Block, stmts []ast.Stmt, brk, cont *Block) *Block {
	for _, s := range stmts {
		if cur == nil {
			// Unreachable code after a terminal statement: give it its
			// own island so its nodes still map to a block.
			cur = c.newBlock()
		}
		cur = c.buildStmt(cur, s, brk, cont)
	}
	return cur
}

func (c *CFG) buildStmt(cur *Block, s ast.Stmt, brk, cont *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.buildStmts(cur, s.List, brk, cont)

	case *ast.IfStmt:
		if s.Init != nil {
			c.add(cur, s.Init)
		}
		if s.Cond != nil {
			c.add(cur, s.Cond)
		}
		thenB := c.newBlock()
		link(cur, thenB)
		thenEnd := c.buildStmts(thenB, s.Body.List, brk, cont)
		join := c.newBlock()
		link(thenEnd, join)
		if s.Else != nil {
			elseB := c.newBlock()
			link(cur, elseB)
			elseEnd := c.buildStmt(elseB, s.Else, brk, cont)
			link(elseEnd, join)
		} else {
			link(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			c.add(cur, s.Init)
		}
		head := c.newBlock()
		link(cur, head)
		if s.Cond != nil {
			c.add(head, s.Cond)
		}
		exit := c.newBlock()
		post := c.newBlock()
		if s.Post != nil {
			c.add(post, s.Post)
		}
		link(post, head)
		bodyB := c.newBlock()
		link(head, bodyB)
		if s.Cond != nil {
			link(head, exit) // cond false
		}
		bodyEnd := c.buildStmts(bodyB, s.Body.List, exit, post)
		link(bodyEnd, post)
		return exit

	case *ast.RangeStmt:
		head := c.newBlock()
		c.add(head, s.X)
		link(cur, head)
		exit := c.newBlock()
		link(head, exit) // range exhausted
		bodyB := c.newBlock()
		link(head, bodyB)
		bodyEnd := c.buildStmts(bodyB, s.Body.List, exit, head)
		link(bodyEnd, head)
		return exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.buildBranching(cur, s, cont)

	case *ast.ReturnStmt:
		c.add(cur, s)
		return nil

	case *ast.BranchStmt:
		c.add(cur, s)
		switch s.Tok {
		case token.BREAK:
			link(cur, brk)
			return nil
		case token.CONTINUE:
			link(cur, cont)
			return nil
		case token.GOTO:
			return nil // no label resolution; treat as terminal
		}
		return cur // fallthrough: the next case body follows anyway

	case *ast.LabeledStmt:
		return c.buildStmt(cur, s.Stmt, brk, cont)

	default:
		c.add(cur, s)
		return cur
	}
}

// buildBranching handles switch/type-switch/select: each clause body
// is a block from the header, all joining after the statement.
func (c *CFG) buildBranching(cur *Block, s ast.Stmt, cont *Block) *Block {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.add(cur, s.Init)
		}
		if s.Tag != nil {
			c.add(cur, s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.add(cur, s.Init)
		}
		c.add(cur, s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	join := c.newBlock()
	for _, cl := range clauses {
		var body []ast.Stmt
		clB := c.newBlock()
		link(cur, clB)
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.add(clB, e)
			}
			if cl.List == nil {
				hasDefault = true
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				c.add(clB, cl.Comm)
			} else {
				hasDefault = true
			}
			body = cl.Body
		}
		end := c.buildStmts(clB, body, join, cont)
		link(end, join)
	}
	if !hasDefault || len(clauses) == 0 {
		link(cur, join) // no case matched (or empty switch)
	}
	return join
}

// BlockOf returns the block holding the innermost recorded statement
// enclosing pos, or nil. Expressions map through their statement.
func (c *CFG) BlockOf(n ast.Node) *Block { return c.stmtBlock[n] }

// Reachable returns the set of blocks reachable from b, b included.
func (c *CFG) Reachable(b *Block) map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(b)
	return seen
}

// ReachableFrom reports whether target can execute after the blocks
// in reach: some recorded node of a reachable block contains target
// by position. (A function literal's body maps to the statement that
// holds the literal — the core treats a closure as executing where it
// is written, which over-approximates exactly the way a lint wants.)
func ReachableFrom(c *CFG, reach map[*Block]bool, target ast.Node) bool {
	for b := range reach {
		for _, n := range b.Nodes {
			if n.Pos() <= target.Pos() && target.End() <= n.End() {
				return true
			}
		}
	}
	return false
}

// --- def-use helpers ----------------------------------------------------

// definingAssign finds the statement in fn's body that defines or
// first assigns obj (":=", "=", or var decl), or nil.
func definingAssign(info *types.Info, body ast.Node, obj types.Object) ast.Expr {
	var rhs ast.Expr
	ast.Inspect(body, func(n ast.Node) bool {
		if rhs != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				if info.Defs[id] == obj || info.Uses[id] == obj {
					if i < len(n.Rhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					return false
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if info.Defs[id] == obj && i < len(n.Values) {
					rhs = n.Values[i]
					return false
				}
			}
		}
		return true
	})
	return rhs
}

// chanMakeCap resolves obj's defining expression inside body to a
// `make(chan T, N)` call and returns N (0 for unbuffered make with
// two args... capacity constant required). ok is false when obj is
// not defined by a make(chan) with a constant capacity in body.
func chanMakeCap(info *types.Info, body ast.Node, obj types.Object) (capN int64, ok bool) {
	rhs := definingAssign(info, body, obj)
	if rhs == nil {
		return 0, false
	}
	call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
	if !isCall {
		return 0, false
	}
	if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); !isIdent || id.Name != "make" {
		return 0, false
	}
	if len(call.Args) < 1 {
		return 0, false
	}
	argT := info.Types[call.Args[0]].Type
	if argT == nil {
		return 0, false
	}
	if _, isChan := argT.Underlying().(*types.Chan); !isChan {
		return 0, false
	}
	if len(call.Args) == 1 {
		return 0, true // unbuffered
	}
	tv, okTV := info.Types[call.Args[1]]
	if !okTV || tv.Value == nil {
		return 0, false
	}
	n, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return n, true
}

// selectorObj resolves a selector (or plain ident) used as a sync
// primitive handle to a stable object: the FIELD var for x.f (stable
// across the package's functions), the variable itself for plain
// idents. Returns nil for anything else (map/slice elements, calls).
func selectorObj(info *types.Info, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(v)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.ObjectOf(v.Sel)
	case *ast.StarExpr:
		return selectorObj(info, v.X)
	case *ast.UnaryExpr:
		return selectorObj(info, v.X)
	}
	return nil
}

// funcDeclOf maps the package's *types.Func objects to their
// declarations, so intra-package interprocedural checks can chase a
// call into its body.
func funcDeclOf(pass *Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, fd := range funcDecls(pass.Files) {
		if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
			m[fn] = fd
		}
	}
	return m
}
