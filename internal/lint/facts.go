package lint

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
)

// Facts is the cross-package summary store that turns the per-package
// analyzers into a whole-program analysis: when a package is analyzed,
// its analyzers export facts about its objects ("this function joins
// its goroutines", "this function acquires mutex X", "this field is
// accessed atomically"), and analyzers running over LATER packages —
// the loader hands packages over in dependency order, dependencies
// first — import those facts instead of re-deriving (or being blind
// to) their dependencies' behavior. This mirrors
// golang.org/x/tools/go/analysis facts in role, but keys facts by
// stable symbol strings instead of types.Object identities, because
// an object imported from export data is NOT the object the defining
// package was analyzed with.
//
// Fact values are stored as JSON so the whole store serializes: in
// `go vet -vettool` mode each compilation unit is a separate process,
// and the store round-trips through the driver's .vetx fact files
// (vetunit.go), giving the same dependency-order flow the direct
// loader provides in-process.
type Facts struct {
	// m[analyzer][symbol] = marshaled fact.
	m map[string]map[string]json.RawMessage
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{m: make(map[string]map[string]json.RawMessage)}
}

// export records one fact; a second export for the same (analyzer,
// symbol) overwrites (last writer wins — package order is
// deterministic, so this is too).
func (f *Facts) export(analyzer, symbol string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("lint: marshaling %s fact for %s: %w", analyzer, symbol, err)
	}
	if f.m[analyzer] == nil {
		f.m[analyzer] = make(map[string]json.RawMessage)
	}
	f.m[analyzer][symbol] = data
	return nil
}

// lookup unmarshals the fact for (analyzer, symbol) into out,
// reporting whether one exists.
func (f *Facts) lookup(analyzer, symbol string, out any) bool {
	data, ok := f.m[analyzer][symbol]
	if !ok {
		return false
	}
	return json.Unmarshal(data, out) == nil
}

// Symbols returns the sorted symbols carrying facts for analyzer.
func (f *Facts) Symbols(analyzer string) []string {
	syms := make([]string, 0, len(f.m[analyzer]))
	for s := range f.m[analyzer] {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	return syms
}

// MarshalJSON serializes the whole store (the .vetx payload).
func (f *Facts) MarshalJSON() ([]byte, error) {
	return json.Marshal(f.m)
}

// UnmarshalJSON merges a serialized store into f (existing facts for
// other packages' symbols are kept; duplicates overwrite).
func (f *Facts) UnmarshalJSON(data []byte) error {
	var m map[string]map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	if f.m == nil {
		f.m = make(map[string]map[string]json.RawMessage)
	}
	for a, syms := range m {
		if f.m[a] == nil {
			f.m[a] = make(map[string]json.RawMessage)
		}
		for s, v := range syms {
			f.m[a][s] = v
		}
	}
	return nil
}

// ExportFact records a fact about symbol under this pass's analyzer.
func (p *Pass) ExportFact(symbol string, v any) {
	if p.Facts == nil {
		return
	}
	if err := p.Facts.export(p.Analyzer.Name, symbol, v); err != nil {
		panic(err) // fact types are package-internal; failing to marshal one is a bug
	}
}

// ImportFact looks up another package's (or this one's) fact about
// symbol for this pass's analyzer, unmarshaling it into out.
func (p *Pass) ImportFact(symbol string, out any) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.lookup(p.Analyzer.Name, symbol, out)
}

// ImportFactOf is ImportFact against a different analyzer's facts
// (lockorder consumes atomicfield's, for example).
func (p *Pass) ImportFactOf(analyzer, symbol string, out any) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.lookup(analyzer, symbol, out)
}

// FactSymbols lists the symbols carrying facts for this pass's
// analyzer, in sorted order.
func (p *Pass) FactSymbols() []string {
	if p.Facts == nil {
		return nil
	}
	return p.Facts.Symbols(p.Analyzer.Name)
}

// FuncSymbol names a function or method stably across packages:
// "pkg/path.Func" or "(pkg/path.Recv).Method" — types.Func.FullName's
// format, which survives the export-data round trip.
func FuncSymbol(fn *types.Func) string { return fn.FullName() }

// FieldSymbol names a struct field stably across packages:
// "pkg/path.Type.field". The owning named type is found by scanning
// the package scope (go/types fields don't link back to their
// struct). Empty when the field belongs to an unnamed struct.
func FieldSymbol(pkg *types.Package, fld *types.Var) string {
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fld {
				return pkg.Path() + "." + name + "." + fld.Name()
			}
		}
	}
	return ""
}

// VarSymbol names a package-level variable stably: "pkg/path.name".
func VarSymbol(v *types.Var) string {
	if v.Pkg() == nil {
		return ""
	}
	return v.Pkg().Path() + "." + v.Name()
}
