package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxLoop enforces the engine's cancellation contract (PR 4): every
// engine loop observes context cancellation per 64-lane block, and
// context-carrying code never drops into a non-ctx engine entry point
// when a *Ctx variant exists.
//
// Three rules:
//
//  1. A function annotated `//sortnets:ctxloop` must consult its
//     context inside a for loop — ctx.Err() or ctx.Done() (the select
//     form included) somewhere under a loop. The engine's streaming
//     loops carry this annotation, so a refactor that hoists the
//     per-block check out of the loop (or deletes it) is a diagnostic,
//     not a latent unbounded computation.
//
//  2. In the engine packages (CtxLoopScope), a function that takes a
//     context.Context must not call F(args...) without a context when
//     a sibling FCtx(ctx, ...) exists — calling the non-ctx entry
//     point from ctx-carrying code silently severs the cancellation
//     chain (the wrapper runs under context.Background()).
//
//  3. In the engine packages, a function with a named context
//     parameter that contains a for loop must reference the context
//     somewhere — a ctx that is neither consulted nor forwarded while
//     the function loops is a severed chain. (Intentionally unused
//     contexts are declared `_ context.Context`.)
var CtxLoop = &Analyzer{
	Name:    "ctxloop",
	Doc:     "engine loops must observe context cancellation; ctx-carrying code must call *Ctx engine variants",
	Version: "1",
	Run:     runCtxLoop,
}

// CtxLoopScope decides which packages rules 2 and 3 apply to (rule 1
// is annotation-driven and applies everywhere). The default scope is
// the compute spine: the eval engine, the search pipeline, and the
// root package's Session compute paths.
var CtxLoopScope = func(path string) bool {
	return path == "sortnets" ||
		strings.HasSuffix(path, "internal/eval") ||
		strings.HasSuffix(path, "internal/search")
}

const ctxLoopDirective = "//sortnets:ctxloop"

func runCtxLoop(pass *Pass) error {
	inScope := CtxLoopScope(pass.Pkg.Path())
	for _, fd := range funcDecls(pass.Files) {
		annotated := hasDirective(fd.Doc, ctxLoopDirective)
		if !annotated && !inScope {
			continue
		}
		ctxParams := contextParams(pass.Info, fd)
		if annotated {
			checkAnnotatedLoop(pass, fd, ctxParams)
		}
		if !inScope {
			continue
		}
		if len(ctxParams) > 0 {
			checkCtxVariantCalls(pass, fd)
			checkCtxForwarded(pass, fd, ctxParams)
		}
	}
	return nil
}

// contextParams returns the named context.Context parameter objects
// of fd (receiver excluded; engines carry ctx as a parameter).
func contextParams(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if v, ok := info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				out = append(out, v)
			}
		}
	}
	return out
}

// checkAnnotatedLoop enforces rule 1 on one annotated function.
func checkAnnotatedLoop(pass *Pass, fd *ast.FuncDecl, ctxParams []*types.Var) {
	if len(ctxParams) == 0 {
		pass.Reportf(fd.Name.Pos(),
			"%s is annotated %s but has no context.Context parameter", fd.Name.Name, ctxLoopDirective)
		return
	}
	hasLoop := false
	consulted := false
	var walkLoop func(n ast.Node, inLoop bool)
	walkLoop = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				hasLoop = true
				if n.Init != nil {
					walkLoop(n.Init, inLoop)
				}
				if n.Cond != nil {
					walkLoop(n.Cond, true)
				}
				if n.Post != nil {
					walkLoop(n.Post, true)
				}
				walkLoop(n.Body, true)
				return false
			case *ast.RangeStmt:
				hasLoop = true
				walkLoop(n.X, inLoop)
				walkLoop(n.Body, true)
				return false
			case *ast.CallExpr:
				if inLoop && isCtxConsult(pass.Info, n) {
					consulted = true
				}
			}
			return true
		})
	}
	walkLoop(fd.Body, false)
	switch {
	case !hasLoop:
		pass.Reportf(fd.Name.Pos(),
			"%s is annotated %s but contains no for loop", fd.Name.Name, ctxLoopDirective)
	case !consulted:
		pass.Reportf(fd.Name.Pos(),
			"%s is annotated %s but no loop consults the context (want ctx.Err() or <-ctx.Done() checked per block)",
			fd.Name.Name, ctxLoopDirective)
	}
}

// isCtxConsult reports whether call is ctx.Err() or ctx.Done() on any
// context.Context-typed receiver (the parameter itself or a derived
// context).
func isCtxConsult(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isContextType(tv.Type)
}

// checkCtxVariantCalls enforces rule 2: flag calls that bypass an
// existing *Ctx sibling.
func checkCtxVariantCalls(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(pass.Info, call)
		if fn == nil || strings.HasSuffix(fn.Name(), "Ctx") {
			return true
		}
		// Passing any context argument means the callee owns the
		// cancellation chain; nothing to flag.
		for _, arg := range call.Args {
			if tv, ok := pass.Info.Types[arg]; ok && isContextType(tv.Type) {
				return true
			}
		}
		if sibling := ctxSibling(fn); sibling != nil {
			pass.Reportf(call.Pos(),
				"%s is called from a context-carrying function but %s exists; call the Ctx variant so cancellation propagates",
				fn.Name(), sibling.Name())
		}
		return true
	})
}

// ctxSibling finds FCtx for F: a same-scope function (or same-receiver
// method) named F+"Ctx" whose first parameter is context.Context.
func ctxSibling(fn *types.Func) *types.Func {
	name := fn.Name() + "Ctx"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var cand types.Object
	if recv := sig.Recv(); recv != nil {
		recvT := recv.Type()
		if ptr, ok := recvT.(*types.Pointer); ok {
			recvT = ptr.Elem()
		}
		named, ok := recvT.(*types.Named)
		if !ok {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == name {
				cand = m
				break
			}
		}
	} else if fn.Pkg() != nil {
		cand = fn.Pkg().Scope().Lookup(name)
	}
	sibling, ok := cand.(*types.Func)
	if !ok {
		return nil
	}
	ssig, ok := sibling.Type().(*types.Signature)
	if !ok || ssig.Params().Len() == 0 || !isContextType(ssig.Params().At(0).Type()) {
		return nil
	}
	return sibling
}

// checkCtxForwarded enforces rule 3: a looping function must at least
// reference its context parameter.
func checkCtxForwarded(pass *Pass, fd *ast.FuncDecl, ctxParams []*types.Var) {
	hasLoop := false
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
		case *ast.Ident:
			if obj, ok := pass.Info.Uses[n]; ok {
				for _, p := range ctxParams {
					if obj == p {
						used = true
					}
				}
			}
		}
		return true
	})
	if hasLoop && !used {
		pass.Reportf(fd.Name.Pos(),
			"%s takes a context and loops but never consults or forwards it; check ctx per block or take `_ context.Context`",
			fd.Name.Name)
	}
}
