// Package linttest runs lint analyzers over fixture packages and
// checks their diagnostics against analysistest-style expectations:
// a `// want "regexp"` trailing comment on a line expects exactly one
// diagnostic on that line whose message matches the regexp (several
// quoted regexps expect several diagnostics). A fixture line without
// a want comment expects silence, so every fixture is simultaneously
// a positive and a negative test — weakening an analyzer fails the
// unmatched-want side, over-reporting fails the unexpected side.
//
// Fixtures are plain Go packages under testdata (ignored by the go
// tool), parsed and type-checked directly; they may import only the
// standard library, which the default importer resolves without build
// steps or network. RunPkgs lints several fixture packages in
// dependency order against one shared fact store — the way the real
// loader drives the suite — so cross-package facts (goroutineleak's
// ctx-bounded summaries, lockorder's acquisition edges) are testable
// with a two-package fixture.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"sortnets/internal/lint"
)

// Run lints the fixture package in dir (checked under the given
// import path, which decides path-scoped rules like ctxloop's engine
// scope) with the analyzers and reports want-comment mismatches as
// test errors.
func Run(t *testing.T, dir, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	RunPkgs(t, []FixturePkg{{Dir: dir, ImportPath: importPath}}, analyzers...)
}

// FixturePkg names one package of a multi-package fixture run.
type FixturePkg struct {
	Dir        string
	ImportPath string
}

// RunPkgs lints the fixture packages in order against one shared
// fact store. Each package is type-checked with its predecessors
// importable under their fixture import paths, so a later fixture
// can `import "fixture/dep"` and the analyzers see the same
// dependency-ordered fact flow the real loader provides. Want
// comments are checked across all packages.
func RunPkgs(t *testing.T, pkgs []FixturePkg, analyzers ...*lint.Analyzer) {
	t.Helper()
	deps := make(map[string]*types.Package)
	// One stdlib importer for the whole run: importer.Default() caches
	// per instance, and type identity across fixture packages (dep's
	// context.Context IS the client's) requires the shared cache.
	fallback := importer.Default()
	facts := lint.NewFacts()
	var loaded []*lint.Package
	var diags []lint.Diagnostic
	for _, fp := range pkgs {
		pkg, err := loadFixture(fp.Dir, fp.ImportPath, deps, fallback)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fp.Dir, err)
		}
		deps[fp.ImportPath] = pkg.Types
		ds, err := lint.RunAnalyzersFacts(pkg, analyzers, facts)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", fp.Dir, err)
		}
		loaded = append(loaded, pkg)
		diags = append(diags, ds...)
	}
	checkWants(t, loaded, diags)
}

// checkWants matches each diagnostic to an unconsumed want on its
// line and reports both unexpected diagnostics and unmatched wants.
func checkWants(t *testing.T, pkgs []*lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	var wants []want
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	type key struct {
		file string
		line int
	}
	byLine := make(map[key][]*want)
	for i := range wants {
		w := &wants[i]
		byLine[key{w.file, w.line}] = append(byLine[key{w.file, w.line}], w)
	}
	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range byLine[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", posOf(d), d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func posOf(d lint.Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column)
}

// LoadFixture parses and type-checks every .go file in dir as one
// package under the given import path. Fixtures may import only the
// standard library.
func LoadFixture(dir, importPath string) (*lint.Package, error) {
	return loadFixture(dir, importPath, nil, importer.Default())
}

// fixtureImporter resolves previously loaded fixture packages by
// import path and falls back to the default (standard library)
// importer for everything else.
type fixtureImporter struct {
	pkgs     map[string]*types.Package
	fallback types.Importer
}

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p, nil
	}
	return fi.fallback.Import(path)
}

func loadFixture(dir, importPath string, deps map[string]*types.Package, fallback types.Importer) (*lint.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	conf := types.Config{
		Importer: fixtureImporter{pkgs: deps, fallback: fallback},
		Sizes:    sizes,
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	return &lint.Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Sizes:      sizes,
	}, nil
}

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// wantRE extracts the quoted or backquoted regexps of a want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, pkg *lint.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment (no quoted regexp): %s", filepath.Base(pos.Filename), pos.Line, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", filepath.Base(pos.Filename), pos.Line, pat, err)
					}
					wants = append(wants, want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}
