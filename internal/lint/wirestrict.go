package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// WireStrict defends the wire contract (PRs 4–6): the JSON tags on
// the Request/Verdict family ARE the wire format, and the hand-rolled
// codec in wire.go must know every field of every wire type.
//
// Two rules:
//
//  1. Wire structs — any struct with json-tagged fields — are
//     constructed with keyed literals only. A positional literal
//     compiles silently through a field insertion or reorder and
//     ships wrong bytes; a keyed literal turns the same change into
//     a compile error or an honest zero value.
//
//  2. Codec completeness: for a wire struct with a hand-rolled
//     encoder (Append<T> / append<T>) or decoder (Unmarshal<T>Line /
//     <t>Into), every json tag must appear as a field-name string
//     literal in that function — or, for section structs encoded
//     inline by their parent (CheckVerdict inside AppendVerdict's
//     tree), in the parent's codec function. Adding a field to
//     Request without teaching AppendRequest AND UnmarshalRequestLine
//     is a diagnostic, not silent codec drift discovered by a
//     differential fuzzer three PRs later.
var WireStrict = &Analyzer{
	Name:    "wirestrict",
	Doc:     "wire structs use keyed literals; hand-rolled codec functions must cover every json-tagged field",
	Version: "1",
	Run:     runWireStrict,
}

func runWireStrict(pass *Pass) error {
	checkKeyedLiterals(pass)
	checkCodecCoverage(pass)
	return nil
}

// jsonTags returns the struct's wire field names (json tags, options
// stripped; untagged and "-" fields excluded), keyed by field index.
func jsonTags(st *types.Struct) map[int]string {
	var tags map[int]string
	for i := 0; i < st.NumFields(); i++ {
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		if tag == "" || tag == "-" {
			continue
		}
		name, _, _ := strings.Cut(tag, ",")
		if name == "" {
			name = st.Field(i).Name()
		}
		if tags == nil {
			tags = make(map[int]string)
		}
		tags[i] = name
	}
	return tags
}

// checkKeyedLiterals flags positional composite literals of any
// json-tagged struct, wherever the struct is declared.
func checkKeyedLiterals(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			tv, ok := pass.Info.Types[lit]
			if !ok || tv.Type == nil {
				return true
			}
			t := tv.Type
			if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			st, ok := t.Underlying().(*types.Struct)
			if !ok || jsonTags(st) == nil {
				return true
			}
			if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
				pass.Reportf(lit.Pos(),
					"unkeyed composite literal of wire struct %s: positional fields silently misencode after any field insertion or reorder; use keyed fields",
					types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			}
			return true
		})
	}
}

// codecFns indexes this package's hand-rolled codec functions by
// their lowercased name.
type codecIndex struct {
	pass *Pass
	fns  map[string]*ast.FuncDecl
	// litCache caches the string literals found in a function body.
	lits map[*ast.FuncDecl]map[string]bool
}

func newCodecIndex(pass *Pass) *codecIndex {
	ci := &codecIndex{pass: pass, fns: make(map[string]*ast.FuncDecl), lits: make(map[*ast.FuncDecl]map[string]bool)}
	for _, fd := range funcDecls(pass.Files) {
		ci.fns[strings.ToLower(fd.Name.Name)] = fd
	}
	return ci
}

// encoderFor / decoderFor find the codec function for type name t
// ("Request" → AppendRequest / UnmarshalRequestLine or requestInto).
func (ci *codecIndex) encoderFor(t string) *ast.FuncDecl {
	return ci.fns["append"+strings.ToLower(t)]
}

func (ci *codecIndex) decoderFor(t string) *ast.FuncDecl {
	lt := strings.ToLower(t)
	if fd := ci.fns["unmarshal"+lt+"line"]; fd != nil {
		return fd
	}
	return ci.fns[lt+"into"]
}

// mentions reports whether fd's body contains tag as a field-name
// string literal: a literal exactly equal to the tag, or one
// containing the quoted form `"tag"` (the appenders write composite
// fragments like `"check":`).
func (ci *codecIndex) mentions(fd *ast.FuncDecl, tag string) bool {
	lits := ci.lits[fd]
	if lits == nil {
		lits = make(map[string]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			bl, ok := n.(*ast.BasicLit)
			if !ok || bl.Kind != token.STRING {
				return true
			}
			if tv, ok := ci.pass.Info.Types[bl]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				lits[constant.StringVal(tv.Value)] = true
			}
			return true
		})
		ci.lits[fd] = lits
	}
	if lits[tag] {
		return true
	}
	quoted := `"` + tag + `"`
	for l := range lits {
		if strings.Contains(l, quoted) {
			return true
		}
	}
	return false
}

// checkCodecCoverage enforces rule 2 over the wire structs declared
// in this package.
func checkCodecCoverage(pass *Pass) {
	ci := newCodecIndex(pass)

	// Wire structs declared here, with their type names and specs.
	type wireType struct {
		name string
		st   *types.Struct
		tags map[int]string
	}
	var wires []wireType
	byName := make(map[string]*types.Struct)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if tags := jsonTags(st); tags != nil {
			wires = append(wires, wireType{name: name, st: st, tags: tags})
			byName[name] = st
		}
	}

	// parentOf[name] = wire structs that embed name as a field type
	// (value, pointer or slice) — the inline-codec fallback chain.
	parentOf := make(map[string][]string)
	for _, w := range wires {
		for i := 0; i < w.st.NumFields(); i++ {
			ft := w.st.Field(i).Type()
			for {
				switch t := ft.(type) {
				case *types.Pointer:
					ft = t.Elem()
					continue
				case *types.Slice:
					ft = t.Elem()
					continue
				}
				break
			}
			if named, ok := ft.(*types.Named); ok {
				child := named.Obj().Name()
				if _, isWire := byName[child]; isWire && child != w.name {
					parentOf[child] = append(parentOf[child], w.name)
				}
			}
		}
	}

	// codecOf resolves the encoder/decoder for a type, walking up the
	// parent chain (bounded) when the type has no codec of its own.
	codecOf := func(t string, find func(string) *ast.FuncDecl) *ast.FuncDecl {
		seen := map[string]bool{}
		queue := []string{t}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if seen[cur] {
				continue
			}
			seen[cur] = true
			if fd := find(cur); fd != nil {
				return fd
			}
			queue = append(queue, parentOf[cur]...)
		}
		return nil
	}

	for _, w := range wires {
		enc := codecOf(w.name, ci.encoderFor)
		dec := codecOf(w.name, ci.decoderFor)
		if enc == nil && dec == nil {
			continue // not a hand-rolled wire family (stats payloads etc.)
		}
		for i, tag := range w.tags {
			fld := w.st.Field(i)
			if enc != nil && !ci.mentions(enc, tag) {
				pass.Reportf(fld.Pos(),
					"wire field %s.%s (json %q) is missing from encoder %s: the hand-rolled codec would silently drop it",
					w.name, fld.Name(), tag, enc.Name.Name)
			}
			if dec != nil && !ci.mentions(dec, tag) {
				pass.Reportf(fld.Pos(),
					"wire field %s.%s (json %q) is missing from decoder %s: the hand-rolled codec would silently ignore it",
					w.name, fld.Name(), tag, dec.Name.Name)
			}
		}
	}
}
