package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField enforces the counter discipline behind /stats and
// SessionStats: a struct field that is accessed through sync/atomic
// anywhere in the package must be accessed atomically everywhere —
// one plain `s.count++` racing an atomic.AddInt64(&s.count, 1) is a
// data race the race detector only catches if a test happens to
// interleave it. Keyed composite literals (construction before
// publication) are exempt.
//
// It also checks 64-bit alignment: a raw int64/uint64 field used with
// the sync/atomic functions must sit at an 8-byte-aligned offset
// under 32-bit layout rules, or the first atomic access panics on
// 386/arm (the sync/atomic bugs section). The typed atomic.Int64 /
// atomic.Uint64 wrappers align themselves and are always safe — they
// are also immune to the mixed-access race by construction, which is
// why this repo's counters use them; this analyzer is the fence that
// keeps any future raw-word counter honest.
var AtomicField = &Analyzer{
	Name:    "atomicfield",
	Doc:     "fields accessed via sync/atomic must be accessed atomically everywhere and 64-bit fields must stay aligned",
	Version: "2", // 2: exports per-field facts for lockorder/statscover
	Run:     runAtomicField,
}

// atomicFieldFact marks a raw field as atomically accessed; lockorder
// (atomic-under-mutex mixing) and statscover (counter surfacing)
// consume it cross-package.
type atomicFieldFact struct {
	Atomic bool `json:"atomic"`
}

// atomicFns maps sync/atomic function names to the index of their
// addressed operand (always 0 for the Add/Load/Store/Swap/CAS
// families).
func isAtomicAccessor(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if rest, ok := strings.CutPrefix(name, prefix); ok {
			switch rest {
			case "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer":
				return true
			}
		}
	}
	return false
}

func runAtomicField(pass *Pass) error {
	// Pass 1: fields addressed by sync/atomic calls, and the selector
	// nodes already sanctioned by being that call's operand.
	atomicFields := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fnName := calleePkgPath(pass.Info, call)
			if pkgPath != "sync/atomic" || !isAtomicAccessor(fnName) || len(call.Args) == 0 {
				return true
			}
			if fld, sel := addressedField(pass.Info, call.Args[0]); fld != nil {
				atomicFields[fld] = true
				sanctioned[sel] = true
			}
			return true
		})
	}
	for fld := range atomicFields {
		if sym := FieldSymbol(pass.Pkg, fld); sym != "" {
			pass.ExportFact(sym, atomicFieldFact{Atomic: true})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields must itself be the
	// operand of an atomic call.
	for _, f := range pass.Files {
		// Keys of keyed composite literals initialize, not access.
		litKeys := make(map[*ast.Ident]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					litKeys[id] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			fld, ok := s.Obj().(*types.Var)
			if !ok || !atomicFields[fld] || litKeys[sel.Sel] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s is written with sync/atomic elsewhere in this package but accessed non-atomically here; mixed access is a data race",
				fld.Name())
			return true
		})
	}

	// Pass 3: 32-bit alignment of raw 64-bit atomic fields.
	checkAlignment(pass, atomicFields)
	return nil
}

// addressedField resolves &x.f (or a *int64-typed field passed by
// value is NOT a field access of f itself) to the struct field being
// atomically accessed.
func addressedField(info *types.Info, arg ast.Expr) (*types.Var, *ast.SelectorExpr) {
	unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || unary.Op.String() != "&" {
		return nil, nil
	}
	sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	fld, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	return fld, sel
}

// checkAlignment verifies each atomically accessed 64-bit field is
// 8-byte aligned under 32-bit (GOARCH=386) struct layout.
func checkAlignment(pass *Pass, atomicFields map[*types.Var]bool) {
	sizes32 := types.SizesFor("gc", "386")
	if sizes32 == nil {
		return
	}
	seen := make(map[*types.Struct]bool)
	for fld := range atomicFields {
		if !is64Bit(fld.Type()) {
			continue
		}
		owner := owningStruct(pass.Pkg, fld)
		if owner == nil || seen[owner] {
			continue
		}
		seen[owner] = true
		fields := make([]*types.Var, owner.NumFields())
		for i := 0; i < owner.NumFields(); i++ {
			fields[i] = owner.Field(i)
		}
		offsets := sizes32.Offsetsof(fields)
		for i, f := range fields {
			if atomicFields[f] && is64Bit(f.Type()) && offsets[i]%8 != 0 {
				pass.Reportf(f.Pos(),
					"atomically accessed 64-bit field %s sits at offset %d under 32-bit layout; move it to the front of the struct (or pad) so sync/atomic does not fault on 386/arm",
					f.Name(), offsets[i])
			}
		}
	}
}

// is64Bit reports whether t is a raw 64-bit integer.
func is64Bit(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int64, types.Uint64:
		return true
	}
	return false
}

// owningStruct finds the struct type declaring fld by scanning the
// package's named types (fields don't link back to their struct in
// go/types).
func owningStruct(pkg *types.Package, fld *types.Var) *types.Struct {
	var found *types.Struct
	scope := pkg.Scope()
	var visit func(t types.Type)
	seen := make(map[types.Type]bool)
	visit = func(t types.Type) {
		if t == nil || seen[t] || found != nil {
			return
		}
		seen[t] = true
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fld {
				found = st
				return
			}
			visit(st.Field(i).Type())
		}
	}
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
			visit(tn.Type())
		}
	}
	return found
}
