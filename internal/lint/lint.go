// Package lint is sortnets' project-specific static-analysis suite:
// a small go/analysis-shaped framework plus the analyzers that
// machine-enforce the invariants the engine and serve layers are
// hand-built around — per-block context cancellation, allocation-free
// hot paths, pool hygiene, atomic counter discipline, and wire-codec
// completeness. CHANGES.md documents these contracts prose-first;
// this package is the executable form, run on every change by
// cmd/sortnetlint and CI, so a refactor that silently drops one of
// them fails fast instead of waiting for a fuzz/chaos/-race campaign
// to trip over the regression.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) but is built on the standard library only —
// go/parser + go/types over export data produced by `go list
// -export` — so the suite needs no module dependencies and runs in
// hermetic build environments. Analyzers written against it port to
// the real go/analysis API mechanically if the dependency ever lands.
//
// # Annotations
//
//   - `//sortnets:hotpath` in a function's doc block opts it into the
//     hotalloc allocation denylist.
//   - `//sortnets:ctxloop` in a function's doc block asserts its loop
//     observes context cancellation (ctx.Err/ctx.Done inside a loop).
//
// # Suppressions
//
// A finding judged a false positive is silenced with a comment on the
// flagged line (or the line above):
//
//	//lint:ignore <analyzer> <reason>
//
// The analyzer name may be a comma-separated list or "all". The
// reason is mandatory: a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer in shape.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore suppressions.
	Name string
	// Doc is the analyzer's documentation: first line is a one-line
	// summary.
	Doc string
	// Version participates in the vet driver's cache key (-V=full):
	// bump it when the analyzer's rules change so stale `go vet`
	// results are invalidated even though the tool binary may hash
	// identically in unusual build setups.
	Version string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report/Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run over one package: the syntax, the
// type information, the cross-package fact store, and the diagnostic
// sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Sizes    types.Sizes
	// Dir is the package's source directory on disk (empty in
	// fixture-driven tests without one); statscover walks up from it
	// to find the governing README.md.
	Dir string
	// Facts carries cross-package summaries; packages are analyzed in
	// dependency order, so facts exported by a dependency are visible
	// here. See facts.go.
	Facts *Facts

	diags *[]Diagnostic
}

// A TextEdit replaces the half-open byte range [Start, End) of
// Filename with NewText. Offsets are file byte offsets (token.Position
// .Offset), so edits survive being serialized to JSON and applied by
// a different process.
type TextEdit struct {
	Filename string `json:"file"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	NewText  string `json:"new"`
}

// A SuggestedFix is one mechanical resolution of a finding, applied
// by `sortnetlint -fix`.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// A Diagnostic is one finding, positioned and attributed, optionally
// carrying mechanical fixes.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying one suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// Edit builds a TextEdit replacing [pos, end) with newText, resolving
// token positions to byte offsets.
func (p *Pass) Edit(pos, end token.Pos, newText string) TextEdit {
	from, to := p.Fset.Position(pos), p.Fset.Position(end)
	return TextEdit{Filename: from.Filename, Start: from.Offset, End: to.Offset, NewText: newText}
}

// InsertBefore builds a TextEdit inserting newText at pos.
func (p *Pass) InsertBefore(pos token.Pos, newText string) TextEdit {
	at := p.Fset.Position(pos)
	return TextEdit{Filename: at.Filename, Start: at.Offset, End: at.Offset, NewText: newText}
}

// All returns the full sortnetlint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxLoop, HotAlloc, PoolSafe, AtomicField, WireStrict,
		GoroutineLeak, LockOrder, RetryContract, StatsCover,
	}
}

// RunAnalyzers applies the analyzers to pkg with a fresh fact store —
// the single-package form. Whole-program checks (lockorder cycles,
// cross-package joins) need RunAnalyzersFacts with a store shared
// across a dependency-ordered package walk.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersFacts(pkg, analyzers, NewFacts())
}

// RunAnalyzersFacts applies the analyzers to pkg against a shared
// fact store, filters suppressed findings, and returns the surviving
// diagnostics sorted by position. Analyzer errors (not findings) are
// returned as-is.
func RunAnalyzersFacts(pkg *Package, analyzers []*Analyzer, facts *Facts) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFacts()
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Sizes:    pkg.Sizes,
			Dir:      pkg.Dir,
			Facts:    facts,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	diags = applySuppressions(pkg, diags)
	sort.Slice(diags, func(i, j int) bool { return lessDiag(diags[i], diags[j]) })
	return diags, nil
}

// lessDiag is the one position ordering every output path shares
// (per-package results, the merged -json stream, baseline files), so
// CI artifacts diff reproducibly.
func lessDiag(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	return a.Message < b.Message
}

// SortDiagnostics sorts a merged diagnostic stream into the canonical
// order (stable across runs and platforms).
func SortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool { return lessDiag(diags[i], diags[j]) })
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	names  []string // analyzer names, or ["all"]
	reason string
	pos    token.Position
}

// applySuppressions drops diagnostics silenced by a //lint:ignore
// comment on their line or the line above, and reports suppressions
// that are missing their mandatory reason.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	// byLine[file][line] — a suppression covers its own line and the
	// one below it (trailing comment vs. comment-above styles).
	byLine := make(map[string]map[int]suppression)
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) == 0 {
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore: want `//lint:ignore <analyzer> <reason>`",
					})
					continue
				}
				s := suppression{names: strings.Split(fields[0], ","), pos: pos}
				if len(fields) > 1 {
					s.reason = strings.Join(fields[1:], " ")
				}
				if s.reason == "" {
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "//lint:ignore needs a reason: why is this finding a false positive?",
					})
					continue
				}
				m := byLine[pos.Filename]
				if m == nil {
					m = make(map[int]suppression)
					byLine[pos.Filename] = m
				}
				m[pos.Line] = s
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		s, ok := byLine[d.Pos.Filename][d.Pos.Line]
		if !ok {
			s, ok = byLine[d.Pos.Filename][d.Pos.Line-1]
		}
		if ok && suppresses(s, d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, malformed...)
}

func suppresses(s suppression, analyzer string) bool {
	for _, n := range s.names {
		if n == analyzer || n == "all" {
			return true
		}
	}
	return false
}

// --- shared AST/type helpers used by the analyzers ----------------------

// hasDirective reports whether the function's doc block carries the
// given //sortnets:* directive (exact line match, leading-comment
// form). Directives must sit in the doc block immediately above the
// declaration.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// callee resolves the called function or method of a call expression,
// or nil for indirect calls, conversions and builtins.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.F.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleePkgPath returns the defining package path of a call's callee,
// or "" when unresolvable or a builtin/universe function.
func calleePkgPath(info *types.Info, call *ast.CallExpr) (path, name string) {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isByteSlice reports whether t's underlying type is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// rootObj digs the leftmost named object out of an lvalue-ish
// expression: x, x[i], x.f, (*x).f, &x → the object for x (or the
// selected field for pure selector chains where the base is not an
// identifier). Used to give pools and pooled variables an identity.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(v)
		case *ast.ParenExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// funcBodies yields every function body in the file with its
// enclosing declaration info: top-level functions and methods. Bodies
// of function literals are walked as part of their enclosing
// declaration.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
