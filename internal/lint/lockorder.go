package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the whole-program lock acquisition graph and
// reports two flow properties the race detector structurally cannot:
//
//   - Ordering cycles: an edge L→M is recorded whenever M is acquired
//     while L is held — directly, or through a call whose (exported,
//     cross-package) acquisition summary says it takes M. A cycle in
//     the accumulated graph is a deadlock two goroutines can reach by
//     running the edge's endpoints concurrently; the diagnostic lands
//     on the acquisition that closes the cycle. Recursive acquisition
//     of the SAME lock on one path is reported immediately (Go
//     mutexes are not reentrant).
//
//   - Discipline mixing: a sync/atomic access, under a held mutex, to
//     a field whose atomicfield fact says it is managed atomically
//     elsewhere. One synchronization regime must own each field; the
//     lock suggests the author believes it protects the counter, and
//     the atomic says it doesn't need protecting — one of them is
//     wrong.
//
// Lock identity is the stable symbol of the mutex's variable — a
// struct field ("pkg.Type.mu") or a package-level var ("pkg.mu").
// Local mutexes are skipped (no cross-function identity), and
// same-symbol edges between DIFFERENT instances are not recorded
// (b1.mu vs b2.mu is instance-ordered, not symbol-ordered). The walk
// is linear per function: branches are explored with a copy of the
// held set, deferred unlocks are treated as end-of-function releases,
// and function literals are analyzed as their own (empty-held)
// functions because they run on other goroutines' stacks.
var LockOrder = &Analyzer{
	Name:    "lockorder",
	Doc:     "whole-program lock acquisition graph: ordering cycles, recursive locks, and atomic-under-mutex mixing",
	Version: "1",
	Run:     runLockOrder,
}

// lockOrderFact is both fact shapes this analyzer exports: per
// function (symbol = FuncSymbol) the locks it acquires anywhere
// inside, and per package (symbol = "edges:<path>") the ordered
// pairs it observed.
type lockOrderFact struct {
	Locks []string   `json:"locks,omitempty"`
	Edges []lockEdge `json:"edges,omitempty"`
}

// lockEdge records "To was acquired while From was held" with the
// acquisition position (file:line, for cross-package diagnostics).
type lockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Pos  string `json:"pos,omitempty"`
}

// heldLock is one entry of the walk's held set: the stable symbol
// plus the instance base (the leftmost object of the receiver chain)
// so recursive-lock reports fire only on provably the same mutex.
type heldLock struct {
	sym  string
	base types.Object
	pos  token.Pos
}

type lockWalkState struct {
	pass      *Pass
	decls     map[*types.Func]*ast.FuncDecl
	summaries map[string][]string // FuncSymbol -> acquired lock symbols
	edges     []lockEdge
	edgePos   []token.Pos // parallel to edges: position in THIS package
}

func runLockOrder(pass *Pass) error {
	st := &lockWalkState{
		pass:      pass,
		decls:     funcDeclOf(pass),
		summaries: make(map[string][]string),
	}

	// Fixpoint the per-function acquisition summaries over the
	// package's internal call graph (callee bodies may be declared
	// after their callers; cross-package callees come from facts).
	for changed := true; changed; {
		changed = false
		for fn, fd := range st.decls {
			sum := st.summarize(fd)
			key := FuncSymbol(fn)
			if len(sum) != len(st.summaries[key]) {
				st.summaries[key] = sum
				changed = true
			}
		}
	}
	for _, fn := range sortedFuncs(st.decls) {
		if locks := st.summaries[FuncSymbol(fn)]; len(locks) > 0 {
			pass.ExportFact(FuncSymbol(fn), lockOrderFact{Locks: locks})
		}
	}

	// Edge walk: every declared function and every function literal,
	// each from an empty held set.
	for _, fn := range sortedFuncs(st.decls) {
		fd := st.decls[fn]
		st.walkStmts(fd.Body.List, nil)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				st.walkStmts(lit.Body.List, nil)
			}
			return true
		})
	}

	// Accumulate the global graph: every package analyzed before this
	// one (dependency order) has exported its edges.
	global := make(map[string]map[string]string) // from -> to -> pos
	addEdge := func(e lockEdge) {
		if global[e.From] == nil {
			global[e.From] = make(map[string]string)
		}
		if _, ok := global[e.From][e.To]; !ok {
			global[e.From][e.To] = e.Pos
		}
	}
	for _, sym := range pass.FactSymbols() {
		if !strings.HasPrefix(sym, "edges:") {
			continue
		}
		var fact lockOrderFact
		if pass.ImportFact(sym, &fact) {
			for _, e := range fact.Edges {
				addEdge(e)
			}
		}
	}
	for _, e := range st.edges {
		addEdge(e)
	}
	if len(st.edges) > 0 {
		pass.ExportFact("edges:"+pass.Pkg.Path(), lockOrderFact{Edges: dedupeEdges(st.edges)})
	}

	// Report each of THIS package's edges that closes a cycle.
	reported := make(map[string]bool)
	for i, e := range st.edges {
		if e.From == e.To {
			continue // handled at acquisition time as a recursive lock
		}
		key := e.From + "→" + e.To
		if reported[key] {
			continue
		}
		if path := lockPath(global, e.To, e.From); path != nil {
			reported[key] = true
			pass.Reportf(st.edgePos[i],
				"acquiring %s while holding %s closes a lock-order cycle (%s); two goroutines taking these paths concurrently deadlock",
				e.To, e.From, strings.Join(append(path, e.To), " → "))
		}
	}
	return nil
}

// summarize collects every lock symbol a function acquires, directly
// or through calls (same-package bodies via the running fixpoint,
// cross-package via facts). Function literals are included here —
// for a SUMMARY the question is "can running this function end up
// acquiring L", and a literal invoked or deferred inside does.
func (st *lockWalkState) summarize(fd *ast.FuncDecl) []string {
	set := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sym, _, kind := st.lockCall(call); kind == "acquire" && sym != "" {
			set[sym] = true
			return true
		}
		for _, l := range st.calleeLocks(call) {
			set[l] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// calleeLocks resolves a call's acquisition summary: same-package
// bodies from the fixpoint map, everything else from facts.
func (st *lockWalkState) calleeLocks(call *ast.CallExpr) []string {
	fn := callee(st.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == "sync" {
		return nil
	}
	key := FuncSymbol(fn)
	if sum, ok := st.summaries[key]; ok {
		return sum
	}
	var fact lockOrderFact
	if st.pass.ImportFact(key, &fact) {
		return fact.Locks
	}
	return nil
}

// walkStmts threads the held set through a statement list. Branch
// bodies run on copies: a lock balanced inside a branch stays local
// to it, and an unbalanced branch cannot corrupt the fall-through
// path (lint-grade approximation; defer-released locks are treated
// as held to the end of the function).
func (st *lockWalkState) walkStmts(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range stmts {
		held = st.walkStmt(s, held)
	}
	return held
}

func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func (st *lockWalkState) walkStmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return st.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = st.walkStmt(s.Init, held)
		}
		held = st.walkExpr(s.Cond, held)
		st.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			st.walkStmt(s.Else, copyHeld(held))
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = st.walkStmt(s.Init, held)
		}
		st.walkStmts(s.Body.List, copyHeld(held))
		return held
	case *ast.RangeStmt:
		held = st.walkExpr(s.X, held)
		st.walkStmts(s.Body.List, copyHeld(held))
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			body = s.Body
		case *ast.TypeSwitchStmt:
			body = s.Body
		case *ast.SelectStmt:
			body = s.Body
		}
		for _, cl := range body.List {
			switch cl := cl.(type) {
			case *ast.CaseClause:
				st.walkStmts(cl.Body, copyHeld(held))
			case *ast.CommClause:
				st.walkStmts(cl.Body, copyHeld(held))
			}
		}
		return held
	case *ast.DeferStmt:
		// A deferred Unlock releases at return — from this walk's
		// point of view the lock stays held for the rest of the
		// function, which is exactly the conservative reading the
		// edge recording wants. Other deferred calls run with an
		// unknowable held set; skip them.
		return held
	case *ast.GoStmt:
		// The goroutine starts with an empty stack of OUR locks; its
		// body (if a literal) is walked separately.
		return held
	case *ast.LabeledStmt:
		return st.walkStmt(s.Stmt, held)
	default:
		return st.walkNode(s, held)
	}
}

// walkExpr / walkNode scan a leaf for calls in source order,
// excluding nested function literals (walked separately).
func (st *lockWalkState) walkExpr(e ast.Expr, held []heldLock) []heldLock {
	if e == nil {
		return held
	}
	return st.walkNode(e, held)
}

func (st *lockWalkState) walkNode(n ast.Node, held []heldLock) []heldLock {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, isLit := c.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok {
			held = st.handleCall(call, held)
		}
		return true
	})
	return held
}

// handleCall folds one call into the held set, recording edges,
// recursive locks, and discipline mixing.
func (st *lockWalkState) handleCall(call *ast.CallExpr, held []heldLock) []heldLock {
	pass := st.pass
	if sym, base, kind := st.lockCall(call); kind != "" {
		switch kind {
		case "acquire":
			if sym == "" {
				return held // local mutex: no stable identity
			}
			for _, h := range held {
				if h.sym == sym {
					if h.base != nil && h.base == base {
						pass.Reportf(call.Pos(),
							"recursive acquisition of %s: this goroutine already holds it (sync mutexes are not reentrant; this deadlocks)", sym)
					}
					continue // same symbol, other instance: not a symbol-order edge
				}
				st.edges = append(st.edges, lockEdge{From: h.sym, To: sym, Pos: pass.Fset.Position(call.Pos()).String()})
				st.edgePos = append(st.edgePos, call.Pos())
			}
			return append(held, heldLock{sym: sym, base: base, pos: call.Pos()})
		case "release":
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].sym == sym || sym == "" && held[i].base == base {
					return append(held[:i:i], held[i+1:]...)
				}
			}
			return held
		}
	}

	// Atomic-under-mutex mixing (atomicfield facts).
	if len(held) > 0 {
		if fldSym := atomicCallFieldSymbol(pass, call); fldSym != "" {
			var af struct {
				Atomic bool `json:"atomic"`
			}
			if pass.ImportFactOf("atomicfield", fldSym, &af) && af.Atomic {
				pass.Reportf(call.Pos(),
					"atomic access to %s while holding %s: the field's discipline is sync/atomic (atomicfield), so the lock protects nothing here — pick one synchronization regime",
					fldSym, held[len(held)-1].sym)
			}
		}
	}

	// A plain call while holding locks: edges to everything its
	// summary says it acquires.
	for _, l := range st.calleeLocks(call) {
		for _, h := range held {
			if h.sym == l {
				continue // could be the same instance through a helper; not symbol-ordered evidence
			}
			st.edges = append(st.edges, lockEdge{From: h.sym, To: l, Pos: pass.Fset.Position(call.Pos()).String()})
			st.edgePos = append(st.edgePos, call.Pos())
		}
	}
	return held
}

// lockCall classifies X.Lock()/RLock() ("acquire") and
// X.Unlock()/RUnlock() ("release") on sync.Mutex/RWMutex, returning
// the mutex's stable symbol ("" for locals) and instance base.
func (st *lockWalkState) lockCall(call *ast.CallExpr) (sym string, base types.Object, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil, ""
	}
	fn := callee(st.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil, ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !(isNamedType(recv.Type(), "sync", "Mutex") || isNamedType(recv.Type(), "sync", "RWMutex")) {
		return "", nil, ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		kind = "acquire"
	case "Unlock", "RUnlock":
		kind = "release"
	default:
		return "", nil, ""
	}
	obj := selectorObj(st.pass.Info, sel.X)
	return lockSymbol(st.pass, obj), rootObj(st.pass.Info, sel.X), kind
}

// lockSymbol names a mutex-holding object stably across packages, or
// "" for locals.
func lockSymbol(pass *Pass, obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	if v.IsField() {
		return FieldSymbol(v.Pkg(), v)
	}
	if v.Parent() == v.Pkg().Scope() {
		return VarSymbol(v)
	}
	return ""
}

// atomicCallFieldSymbol resolves a sync/atomic access — the function
// form (atomic.AddInt64(&s.f, 1)) or the typed-wrapper method form
// (s.f.Add(1)) — to the accessed field's stable symbol, or "".
func atomicCallFieldSymbol(pass *Pass, call *ast.CallExpr) string {
	pkgPath, fnName := calleePkgPath(pass.Info, call)
	if pkgPath == "sync/atomic" && isAtomicAccessor(fnName) && len(call.Args) > 0 {
		if fld, _ := addressedField(pass.Info, call.Args[0]); fld != nil && fld.Pkg() != nil {
			return FieldSymbol(fld.Pkg(), fld)
		}
	}
	return ""
}

// lockPath finds a path from → to in the global edge graph,
// returning the node sequence (from included, to excluded), or nil.
func lockPath(global map[string]map[string]string, from, to string) []string {
	seen := map[string]bool{from: true}
	type qe struct {
		node string
		path []string
	}
	queue := []qe{{from, []string{from}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := make([]string, 0, len(global[cur.node]))
		for n := range global[cur.node] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if n == to {
				return cur.path
			}
			if !seen[n] {
				seen[n] = true
				queue = append(queue, qe{n, append(append([]string(nil), cur.path...), n)})
			}
		}
	}
	return nil
}

func dedupeEdges(edges []lockEdge) []lockEdge {
	seen := make(map[string]bool)
	out := edges[:0]
	for _, e := range edges {
		key := e.From + "→" + e.To
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

func sortedFuncs(decls map[*types.Func]*ast.FuncDecl) []*types.Func {
	fns := make([]*types.Func, 0, len(decls))
	for fn := range decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	return fns
}
