package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strconv"
)

// The -fix applier: SuggestedFixes are byte-offset edits, so applying
// them is pure text surgery — no reformatting, no AST printing, no
// churn outside the edited ranges. Edits are applied per file from
// the end backwards (offsets stay valid), identical edits from
// multiple findings are deduplicated (two constant-format findings in
// one file both asking for the same import insertion), and any two
// edits that truly overlap abort the whole file rather than guess.

// ApplyFixes applies every suggested fix in diags to the files on
// disk and returns the files it rewrote. Conflicting edits are an
// error; nothing is written when any file's edits conflict.
func ApplyFixes(diags []Diagnostic) (changed []string, err error) {
	contents, err := applyFixesToBytes(diags, nil)
	if err != nil {
		return nil, err
	}
	for f := range contents {
		changed = append(changed, f)
	}
	sort.Strings(changed)
	for _, f := range changed {
		if err := os.WriteFile(f, contents[f], 0o644); err != nil {
			return nil, err
		}
	}
	return changed, nil
}

// DryRunFixes computes the post-fix contents without writing,
// returning filename → new bytes. read overrides file reading in
// tests; nil means os.ReadFile.
func DryRunFixes(diags []Diagnostic, read func(string) ([]byte, error)) (map[string][]byte, error) {
	return applyFixesToBytes(diags, read)
}

func applyFixesToBytes(diags []Diagnostic, read func(string) ([]byte, error)) (map[string][]byte, error) {
	if read == nil {
		read = os.ReadFile
	}
	byFile := make(map[string][]TextEdit)
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				byFile[e.Filename] = append(byFile[e.Filename], e)
			}
		}
	}
	out := make(map[string][]byte, len(byFile))
	for file, edits := range byFile {
		src, err := read(file)
		if err != nil {
			return nil, fmt.Errorf("lint: applying fixes: %w", err)
		}
		fixed, changed, err := applyEdits(src, edits)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", file, err)
		}
		if changed {
			out[file] = fixed
		}
	}
	return out, nil
}

// applyEdits applies edits to src. Exact-duplicate edits collapse;
// overlapping distinct edits are an error.
func applyEdits(src []byte, edits []TextEdit) ([]byte, bool, error) {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Start != edits[j].Start {
			return edits[i].Start < edits[j].Start
		}
		if edits[i].End != edits[j].End {
			return edits[i].End < edits[j].End
		}
		return edits[i].NewText < edits[j].NewText
	})
	dedup := edits[:0]
	for i, e := range edits {
		if i > 0 && e == edits[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	edits = dedup
	for i := 1; i < len(edits); i++ {
		prev, cur := edits[i-1], edits[i]
		// Two pure insertions at the same offset are allowed (applied
		// in sorted order); a replacement overlapping anything is not.
		if cur.Start < prev.End {
			return nil, false, fmt.Errorf("conflicting fixes at offsets %d and %d", prev.Start, cur.Start)
		}
	}
	if len(edits) == 0 {
		return src, false, nil
	}
	var out []byte
	last := 0
	for _, e := range edits {
		if e.Start < last || e.End > len(src) || e.Start > e.End {
			return nil, false, fmt.Errorf("edit range [%d,%d) out of bounds (len %d)", e.Start, e.End, len(src))
		}
		out = append(out, src[last:e.Start]...)
		out = append(out, e.NewText...)
		last = e.End
	}
	out = append(out, src[last:]...)
	return out, true, nil
}

// importEdit returns the edit that adds path to file's imports, or
// nil when file already imports it. The edit appends to the first
// import group (or inserts a new import declaration after the package
// clause when the file has none), matching gofmt's layout for a
// grouped stdlib import.
func importEdit(p *Pass, file *ast.File, path string) *TextEdit {
	for _, imp := range file.Imports {
		if v, err := strconv.Unquote(imp.Path.Value); err == nil && v == path {
			return nil
		}
	}
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() && len(gd.Specs) > 0 {
			// Grouped import: insert in sorted position.
			for _, spec := range gd.Specs {
				is := spec.(*ast.ImportSpec)
				if v, err := strconv.Unquote(is.Path.Value); err == nil && v > path && is.Name == nil {
					e := p.InsertBefore(is.Pos(), strconv.Quote(path)+"\n\t")
					return &e
				}
			}
			e := p.InsertBefore(gd.Rparen, "\t"+strconv.Quote(path)+"\n")
			return &e
		}
		// Single ungrouped import: add another import line after it.
		e := p.InsertBefore(gd.End()+1, "import "+strconv.Quote(path)+"\n")
		return &e
	}
	// No imports at all: insert after the package clause line.
	e := p.InsertBefore(file.Name.End()+1, "\nimport "+strconv.Quote(path)+"\n")
	return &e
}
