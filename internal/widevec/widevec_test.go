package widevec

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	for _, s := range []string{"", "0", "1", "0101", strings.Repeat("10", 100)} {
		v := MustFromString(s)
		if v.String() != s || v.N() != len(s) {
			t.Errorf("round trip of %d-bit vector failed", len(s))
		}
	}
	if _, err := FromString("01x"); err == nil {
		t.Error("invalid character accepted")
	}
}

func TestBitSetBitAcrossWordBoundaries(t *testing.T) {
	v := New(200)
	for _, i := range []int{0, 63, 64, 65, 127, 128, 199} {
		if v.Bit(i) != 0 {
			t.Errorf("fresh bit %d not 0", i)
		}
		u := v.SetBit(i, 1)
		if u.Bit(i) != 1 {
			t.Errorf("SetBit(%d) lost", i)
		}
		if v.Bit(i) != 0 {
			t.Errorf("SetBit mutated receiver at %d", i)
		}
	}
}

func TestOnesZeros(t *testing.T) {
	v := MustFromString(strings.Repeat("011", 50)) // 150 bits, 100 ones
	if v.Ones() != 100 || v.Zeros() != 50 {
		t.Errorf("ones/zeros = %d/%d", v.Ones(), v.Zeros())
	}
}

func TestIsSortedWide(t *testing.T) {
	if !SortedWithOnes(300, 123).IsSorted() {
		t.Error("SortedWithOnes not sorted")
	}
	v := SortedWithOnes(300, 123).SetBit(0, 1)
	if v.IsSorted() {
		t.Error("1 at the top should unsort")
	}
	if !New(100).IsSorted() {
		t.Error("all zeros sorted")
	}
}

func TestSortedWithOnesCount(t *testing.T) {
	for _, k := range []int{0, 1, 64, 65, 128, 300} {
		v := SortedWithOnes(300, k)
		if v.Ones() != k {
			t.Errorf("k=%d: %d ones", k, v.Ones())
		}
		if !v.IsSorted() {
			t.Errorf("k=%d: not sorted", k)
		}
	}
}

func TestConcatWide(t *testing.T) {
	a := SortedWithOnes(100, 30)
	b := SortedWithOnes(100, 70)
	c := Concat(a, b)
	if c.N() != 200 || c.Ones() != 100 {
		t.Errorf("concat shape wrong: n=%d ones=%d", c.N(), c.Ones())
	}
	for i := 0; i < 100; i++ {
		if c.Bit(i) != a.Bit(i) || c.Bit(100+i) != b.Bit(i) {
			t.Fatalf("concat content wrong at %d", i)
		}
	}
}

func TestEqual(t *testing.T) {
	a := SortedWithOnes(130, 5)
	if !a.Equal(SortedWithOnes(130, 5)) {
		t.Error("equal vectors unequal")
	}
	if a.Equal(SortedWithOnes(130, 6)) || a.Equal(SortedWithOnes(131, 5)) {
		t.Error("unequal vectors equal")
	}
}

func TestApplyComparatorsSortsWithBubble(t *testing.T) {
	// A wide bubble network must sort random wide inputs.
	const n = 150
	var pairs [][2]int
	for pass := n - 1; pass >= 1; pass-- {
		for j := 0; j < pass; j++ {
			pairs = append(pairs, [2]int{j, j + 1})
		}
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		v := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				v = v.SetBit(i, 1)
			}
		}
		out := v.ApplyComparators(pairs)
		if !out.IsSorted() {
			t.Fatalf("bubble failed on trial %d", trial)
		}
		if out.Ones() != v.Ones() {
			t.Fatalf("multiset changed on trial %d", trial)
		}
	}
}

func TestApplyComparatorsMatchesNarrowSemantics(t *testing.T) {
	// Against a scalar reference on random pairs.
	f := func(x uint32, aRaw, bRaw uint8) bool {
		n := 32
		a := int(aRaw) % n
		b := int(bRaw) % n
		if a == b {
			return true
		}
		if a > b {
			a, b = b, a
		}
		v := New(n)
		for i := 0; i < n; i++ {
			if x>>uint(i)&1 == 1 {
				v = v.SetBit(i, 1)
			}
		}
		out := v.ApplyComparators([][2]int{{a, b}})
		wantA, wantB := v.Bit(a), v.Bit(b)
		if wantA > wantB {
			wantA, wantB = wantB, wantA
		}
		return out.Bit(a) == wantA && out.Bit(b) == wantB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative", func() { New(-1) })
	mustPanic("too wide", func() { New(MaxN + 1) })
	mustPanic("bit range", func() { New(5).Bit(5) })
	mustPanic("ones range", func() { SortedWithOnes(5, 6) })
}
