// Package widevec provides binary vectors for comparator networks
// wider than the 64 lines package bitvec packs into one machine word.
//
// The wide regime is where the paper's polynomial-size test sets stop
// being a convenience and become the only possibility: at n = 128 a
// zero-one sweep (2¹²⁸ inputs) is physically impossible, but Theorem
// 2.5 certifies a merger with n²/4 = 4096 vectors and Theorem 2.4
// certifies a (k,n)-selector with Σᵢ₌₀..k C(n,i) − k − 1, polynomial
// for fixed k. The experiment E15 exercises exactly that.
package widevec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a binary string over an arbitrary number of lines, bit i of
// word i>>6 carrying line i. Vecs are immutable by convention: all
// operations return fresh values.
type Vec struct {
	n     int
	words []uint64
}

// MaxN caps the width to keep test-set materialization honest
// (n²/4 vectors of n bits at n = 4096 is still only ~2 GB-bits).
const MaxN = 4096

// New returns the all-zero vector on n lines.
func New(n int) Vec {
	if n < 0 || n > MaxN {
		panic(fmt.Sprintf("widevec: length %d out of range [0,%d]", n, MaxN))
	}
	return Vec{n: n, words: make([]uint64, (n+63)/64)}
}

// FromString parses a string of '0'/'1' runes, line 0 first.
func FromString(s string) (Vec, error) {
	if len(s) > MaxN {
		return Vec{}, fmt.Errorf("widevec: length %d exceeds %d", len(s), MaxN)
	}
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			v.words[i>>6] |= 1 << uint(i&63)
		default:
			return Vec{}, fmt.Errorf("widevec: invalid character %q at %d", s[i], i)
		}
	}
	return v, nil
}

// MustFromString is FromString panicking on error.
func MustFromString(s string) Vec {
	v, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// N returns the number of lines.
func (v Vec) N() int { return v.n }

// Bit returns the value on line i.
func (v Vec) Bit(i int) int {
	v.check(i)
	return int(v.words[i>>6] >> uint(i&63) & 1)
}

// SetBit returns a copy with line i set to b.
func (v Vec) SetBit(i, b int) Vec {
	v.check(i)
	c := v.clone()
	if b == 0 {
		c.words[i>>6] &^= 1 << uint(i&63)
	} else {
		c.words[i>>6] |= 1 << uint(i&63)
	}
	return c
}

func (v Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("widevec: line %d out of range [0,%d)", i, v.n))
	}
}

func (v Vec) clone() Vec {
	c := Vec{n: v.n, words: make([]uint64, len(v.words))}
	copy(c.words, v.words)
	return c
}

// Ones returns the number of 1 bits.
func (v Vec) Ones() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Zeros returns the number of 0 bits.
func (v Vec) Zeros() int { return v.n - v.Ones() }

// Equal reports equality of length and contents.
func (v Vec) Equal(u Vec) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// IsSorted reports whether the vector is nondecreasing (0^a 1^b).
func (v Vec) IsSorted() bool {
	seenOne := false
	for i := 0; i < v.n; i++ {
		b := v.Bit(i)
		if b == 0 && seenOne {
			return false
		}
		if b == 1 {
			seenOne = true
		}
	}
	return true
}

// SortedWithOnes returns 0^(n−k) 1^k on n lines.
func SortedWithOnes(n, k int) Vec {
	if k < 0 || k > n {
		panic(fmt.Sprintf("widevec: %d ones out of range for length %d", k, n))
	}
	v := New(n)
	for i := n - k; i < n; i++ {
		v.words[i>>6] |= 1 << uint(i&63)
	}
	return v
}

// Concat returns the concatenation of a (top) and b (bottom).
func Concat(a, b Vec) Vec {
	if a.n+b.n > MaxN {
		panic(fmt.Sprintf("widevec: concat length %d exceeds %d", a.n+b.n, MaxN))
	}
	v := New(a.n + b.n)
	copy(v.words, a.words)
	for i := 0; i < b.n; i++ {
		if b.Bit(i) == 1 {
			j := a.n + i
			v.words[j>>6] |= 1 << uint(j&63)
		}
	}
	return v
}

// String renders the vector as '0'/'1' runes.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		sb.WriteByte('0' + byte(v.Bit(i)))
	}
	return sb.String()
}

// ApplyComparators routes the vector through a comparator sequence
// given as (a,b) line pairs; it is the wide-width analogue of
// network.ApplyVec and lives here (with a plain pair slice) to keep
// widevec free of upward dependencies. The network package wraps it.
func (v Vec) ApplyComparators(pairs [][2]int) Vec {
	out := v.clone()
	for _, p := range pairs {
		a, b := p[0], p[1]
		av := out.words[a>>6] >> uint(a&63) & 1
		bv := out.words[b>>6] >> uint(b&63) & 1
		if av == 1 && bv == 0 {
			out.words[a>>6] &^= 1 << uint(a&63)
			out.words[b>>6] |= 1 << uint(b&63)
		}
	}
	return out
}
