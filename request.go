package sortnets

import (
	"fmt"

	"sortnets/internal/canon"
	"sortnets/internal/faults"
	"sortnets/internal/network"
	"sortnets/internal/verify"
)

// The ONE request/verdict model of the package: every way of asking
// for a Chung–Ravikumar verdict — the in-process Session, the
// sortnetd HTTP service, and the remote client — speaks Request and
// Verdict. A Request names a network (text form or comparator pairs),
// an operation, and its options; a Verdict carries the canonical
// digest plus exactly one operation-specific section. The JSON tags
// ARE the wire format: internal/serve decodes HTTP bodies straight
// into Request and marshals Verdict back, and sortnets/client does
// the inverse, so a caller can swap a *Session for a *client.Client
// behind the Doer interface without touching request-shaping code.

// Operations a Request can ask for.
const (
	// OpVerify asks for a property verdict from the minimal test set
	// (or the exhaustive 2ⁿ ground truth).
	OpVerify = "verify"
	// OpFaults asks for fault coverage of the property's minimal test
	// set over the standard single-fault universe.
	OpFaults = "faults"
	// OpMinset asks for a minimal subset of the property's test set
	// that still detects every fault the full set detects.
	OpMinset = "minset"
)

// Request is the unified verdict request. The network is given either
// as the paper's text form ("n=4: [1,3][2,4]...", standard
// comparators only) or as an explicit lines + comparator-pair list
// (1-based; a pair [b,a] with b > a means min-to-b / max-to-a and is
// untangled into standard form — circuits whose untangling leaves a
// non-identity lane relabeling are rejected). An empty Op means
// OpVerify; an empty Property means "sorter".
//
// ID is an optional caller-chosen tag, echoed verbatim on the Verdict
// (and on the BatchVerdict line in NDJSON streaming) and omitted from
// the wire when empty. It is correlation only: it never enters cache
// keys, so two requests differing only in ID share one verdict.
type Request struct {
	ID          string   `json:"id,omitempty"`
	Op          string   `json:"op,omitempty"`
	Network     string   `json:"network,omitempty"`
	Lines       int      `json:"lines,omitempty"`
	Comparators [][2]int `json:"comparators,omitempty"`
	Property    string   `json:"property,omitempty"` // sorter | selector | merger
	K           int      `json:"k,omitempty"`        // selector arity
	Exhaustive  bool     `json:"exhaustive,omitempty"`
	Mode        string   `json:"mode,omitempty"` // faults/minset: by-property | by-golden
	Exact       bool     `json:"exact,omitempty"`
}

// Verdict is the unified verdict: identity fields plus exactly one
// populated operation section. Marshaling a Verdict is deterministic,
// so a cached verdict replays byte-identically over the wire (modulo
// ID, which echoes the request's tag and is stamped per reply, never
// stored in the cache).
type Verdict struct {
	ID       string         `json:"id,omitempty"`
	Op       string         `json:"op"`
	Digest   string         `json:"digest"`
	Property string         `json:"property"`
	Check    *CheckVerdict  `json:"check,omitempty"`
	Faults   *FaultsVerdict `json:"faults,omitempty"`
	Minset   *MinsetVerdict `json:"minset,omitempty"`

	// Source reports how the verdict was obtained — "hit" (verdict
	// cache), "coalesced" (joined an identical in-flight
	// computation), or "miss" (computed). It is observability, not
	// payload: excluded from the wire body (the HTTP layer carries it
	// in the X-Sortnetd-Cache header).
	Source string `json:"-"`
}

// CheckVerdict is the OpVerify section.
type CheckVerdict struct {
	Exhaustive     bool   `json:"exhaustive,omitempty"`
	Holds          bool   `json:"holds"`
	TestsRun       int    `json:"testsRun"`
	Counterexample string `json:"counterexample,omitempty"`
	Output         string `json:"output,omitempty"`
}

// FaultsVerdict is the OpFaults section.
type FaultsVerdict struct {
	Mode       string  `json:"mode"`
	Faults     int     `json:"faults"`
	Detectable int     `json:"detectable"`
	Detected   int     `json:"detected"`
	Coverage   float64 `json:"coverage"`
}

// MinsetVerdict is the OpMinset section.
type MinsetVerdict struct {
	Mode       string   `json:"mode"`
	Faults     int      `json:"faults"`
	Detectable int      `json:"detectable"`
	Detected   int      `json:"detected"`
	FullTests  int      `json:"fullTests"`
	Size       int      `json:"size"`
	Exact      bool     `json:"exact"`
	Tests      []string `json:"tests"`
}

// RequestError is a caller-side failure (malformed network, unknown
// property, line limit, …). Status is an HTTP status code; the
// serving layer writes it verbatim and the client reconstructs it, so
// local and remote callers see the same typed error. The JSON tags
// are the NDJSON per-line error form ({"status":400,"error":"..."});
// the single-request JSON endpoints keep their historical
// {"error":"..."} body with the status on the HTTP response line.
//
// RetryAfter is the backpressure hint, in whole seconds, for the
// statuses that promise one (429, 503, 504): when to try again. Over
// HTTP it doubles as the Retry-After header; on NDJSON lines — which
// have no per-line headers — this field is the only carrier, so
// backpressure emitters must populate it (the retrycontract analyzer
// enforces this). Zero means "no hint" and is omitted from the wire.
type RequestError struct {
	Status     int    `json:"status"`
	Msg        string `json:"error"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

func (e *RequestError) Error() string { return e.Msg }

// PanicError is a recovered panic from a verdict computation: the
// compute pool converts an engine panic into this error instead of
// letting it kill the process, so one poisoned request costs its
// caller a 500 — not the daemon. The serving layer counts these as
// panics_recovered on /stats.
type PanicError struct {
	Val any // the recovered panic value
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sortnets: verdict compute panicked: %v", e.Val)
}

// Batch is a slice of Requests submitted as one round trip — the wire
// unit of the batch-first request model. Over HTTP it is encoded as
// NDJSON: one Request per line on POST /do with Content-Type
// application/x-ndjson, answered by one BatchVerdict per line.
type Batch []Request

// BatchVerdict is one batch entry's outcome on the wire: the entry's
// echoed id plus exactly one of Verdict (success) or Error (a
// per-entry *RequestError — a malformed entry never fails its
// neighbours or the connection). Source reports how a successful
// verdict was obtained ("hit", "coalesced", "miss"): NDJSON lines
// have no per-line headers, so the X-Sortnetd-Cache value rides in
// the body here.
type BatchVerdict struct {
	ID      string        `json:"id,omitempty"`
	Verdict *Verdict      `json:"verdict,omitempty"`
	Error   *RequestError `json:"error,omitempty"`
	Source  string        `json:"source,omitempty"`
}

func badRequest(format string, args ...any) error {
	return &RequestError{Status: 400, Msg: fmt.Sprintf(format, args...)}
}

// maxComparators bounds accepted circuit size (memory and compile
// time are linear in it; nothing legitimate is near this).
const maxComparators = 1 << 14

// resolve parses, untangles, canonicalizes and digests the request's
// network. maxLines is the operation's line-count cap and is enforced
// BEFORE any O(lines) allocation (Untangle's lane map, Normalize's
// layer schedule), so an absurd "n=2000000000:" request is rejected,
// not materialized. The returned network is the canonical
// (normalized) form.
func (r *Request) resolve(maxLines int) (*network.Network, string, error) {
	var w *network.Network
	switch {
	case r.Network != "" && (r.Comparators != nil || r.Lines > 0):
		return nil, "", badRequest("give either network text or lines+comparators, not both")
	case r.Network != "":
		parsed, err := network.Parse(r.Network)
		if err != nil {
			return nil, "", badRequest("%v", err)
		}
		if parsed.N > maxLines {
			return nil, "", lineLimitError(parsed.N, maxLines)
		}
		w = parsed
	case r.Comparators != nil || r.Lines > 0:
		if r.Lines < 1 {
			return nil, "", badRequest("comparator form needs a positive lines count")
		}
		if r.Lines > maxLines {
			return nil, "", lineLimitError(r.Lines, maxLines)
		}
		// Validate in the client's 1-based coordinates before the
		// 0-based conversion, so diagnostics quote the pair as sent.
		pairs := make([][2]int, len(r.Comparators))
		for i, p := range r.Comparators {
			if p[0] < 1 || p[1] < 1 || p[0] > r.Lines || p[1] > r.Lines || p[0] == p[1] {
				return nil, "", badRequest("comparator %d [%d,%d] invalid on %d lines (lines are 1-based)",
					i, p[0], p[1], r.Lines)
			}
			pairs[i] = [2]int{p[0] - 1, p[1] - 1}
		}
		untangled, relabel, err := canon.Untangle(r.Lines, pairs)
		if err != nil {
			return nil, "", badRequest("%v", err)
		}
		if !canon.IsIdentity(relabel) {
			return nil, "", &RequestError{Status: 422, Msg: fmt.Sprintf(
				"tangled network: outputs permuted by %v relative to any standard network (in particular it is not a sorter)", relabel)}
		}
		w = untangled
	default:
		return nil, "", badRequest("missing network")
	}
	if len(w.Comps) > maxComparators {
		return nil, "", badRequest("network has %d comparators, limit %d", len(w.Comps), maxComparators)
	}
	c, digest := canon.Canonicalize(w)
	return c, digest, nil
}

func lineLimitError(n, limit int) error {
	return badRequest("network has %d lines, service limit is %d", n, limit)
}

// shardKeyLineCap is ShardKey's line-count cap. Routing must accept
// anything some server might (each server enforces its OWN configured
// cap on arrival), so this only guards the resolver against absurd
// allocation — far beyond any deployed -max-lines.
const shardKeyLineCap = 1 << 16

// ShardKey returns the request's cluster routing key: the canonical
// digest of its network, the same internal/canon sha256 every
// sortnetd caches verdicts under. It is a pure function of the
// network's behavior (text form, comparator form, and any layer
// reordering of the same circuit all yield one digest), so every
// client and shard derives the same owner with no coordination.
// ok is false when the network cannot be resolved (malformed,
// tangled, oversized); such requests have no stable key — route them
// anywhere and let the owning shard reject them properly.
func (r *Request) ShardKey() (key string, ok bool) {
	_, digest, err := r.resolve(shardKeyLineCap)
	if err != nil {
		return "", false
	}
	return digest, true
}

// propertyFor maps the request's property name to a verify.Property.
func propertyFor(name string, n, k int) (verify.Property, error) {
	switch name {
	case "", "sorter":
		return verify.Sorter{N: n}, nil
	case "selector":
		if k < 1 || k > n {
			return nil, badRequest("selector needs 1 ≤ k ≤ n, got k=%d n=%d", k, n)
		}
		return verify.Selector{N: n, K: k}, nil
	case "merger":
		if n%2 != 0 {
			return nil, badRequest("merger property needs an even line count, network has %d", n)
		}
		return verify.Merger{N: n}, nil
	}
	return nil, badRequest("unknown property %q", name)
}

// wireProperty is the inverse of propertyFor: the wire name of a
// built-in property, or ok=false for a caller-defined one (which has
// no wire form and is never verdict-cached).
func wireProperty(p verify.Property) (name string, ok bool) {
	switch p.(type) {
	case verify.Sorter, verify.Selector, verify.Merger:
		return p.Name(), true
	}
	return "", false
}

func detectModeFor(name string) (faults.DetectMode, error) {
	switch name {
	case "", "by-property":
		return faults.ByProperty, nil
	case "by-golden":
		return faults.ByGolden, nil
	}
	return 0, badRequest("unknown detection mode %q (want by-property or by-golden)", name)
}
