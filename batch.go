package sortnets

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"sortnets/internal/eval"
	"sortnets/internal/faults"
	"sortnets/internal/network"
	"sortnets/internal/verify"
)

// Batch-first verdicts. Chung & Ravikumar's fixed minimal test sets
// make fleet verdicts embarrassingly batchable: the expensive part of
// a verify — enumerating the exponential test stream and transposing
// it into 64-lane words — depends only on the property and the width,
// not the network, so it is identical for every same-shaped entry in
// a batch. DoBatch exploits exactly that: it canonicalizes every
// entry up front, deduplicates identical entries within the batch,
// compiles each distinct program once, and runs every group of
// same-width same-property verify entries through one shared
// eval.RunMany pass. Everything else — exhaustive sweeps, faults,
// minset, singletons — falls back to the per-request cache →
// coalesce → compute pipeline of Do, so a batch of one behaves
// exactly like Do.

// BatchError aggregates per-entry failures from DoBatch: Errs is
// index-aligned with the submitted batch, nil at entries that
// produced a verdict. A malformed entry never fails its neighbours —
// DoBatch returns the partial verdict slice alongside the
// *BatchError. Whole-batch failures (context cancellation) are
// returned bare instead, with no verdicts.
type BatchError struct {
	Errs []error
}

// Error summarizes the failure count and quotes the first one.
func (e *BatchError) Error() string {
	n, first := 0, error(nil)
	for _, err := range e.Errs {
		if err != nil {
			if first == nil {
				first = err
			}
			n++
		}
	}
	return fmt.Sprintf("sortnets: %d of %d batch entries failed; first: %v", n, len(e.Errs), first)
}

// groupKey partitions phase 3's groupable verify entries by (width,
// property) without building a key string per entry.
type groupKey struct {
	n    int
	prop string
}

// batchEntry is one request's resolved state inside DoBatch.
type batchEntry struct {
	idx    int
	op     string
	ctrs   *opCounters
	req    *Request
	w      *network.Network
	digest string
	p      verify.Property
	mode   faults.DetectMode // faults/minset only
	key    string            // cache key; "" = uncacheable
	dupOf  int               // index of the earlier entry with the same key, or -1
}

// DoBatch renders verdicts for a whole batch of Requests in one call.
// The result is index-aligned with reqs; each verdict is
// byte-identical to what a sequential Do of the same entry would
// produce (IDs echoed per entry, Source reporting hit / coalesced /
// miss as usual). Per-entry failures are collected into a returned
// *BatchError with the partial verdicts; only context cancellation
// fails the batch as a whole, returning (nil, ctx.Err()).
//
// Pipeline: resolve and digest every entry up front; deduplicate
// entries whose cache keys collide within the batch (counted in
// Stats().Batch.Deduped); serve verdict-cache hits; group the
// remaining non-exhaustive verify entries by (width, property) and
// compute each group ≥ 2 through one shared eval.RunMany pass on the
// compute pool (one test-stream enumeration and one transpose per
// 64-lane block for the whole group); run everything else through
// the same per-request pipeline as Do.
func (s *Session) DoBatch(ctx context.Context, reqs []Request) ([]*Verdict, error) {
	s.stats.batch.batches.Add(1)
	s.stats.batch.entries.Add(int64(len(reqs)))
	verdicts := make([]*Verdict, len(reqs))
	errs := make([]error, len(reqs))
	failed := false
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 1: resolve every entry up front — op, network (parse /
	// untangle / canonicalize / digest), property, cache key.
	// Resolution failures become per-entry errors immediately.
	entries := make([]batchEntry, len(reqs))
	var work []*batchEntry
	for i := range reqs {
		e := &entries[i]
		e.idx, e.req, e.dupOf = i, &reqs[i], -1
		if err := s.resolveEntry(e); err != nil {
			errs[i], failed = err, true
			continue
		}
		work = append(work, e)
	}

	// Phase 2: intra-batch dedup on cache keys (cacheable entries
	// only — distinct uncacheable requests must never share), then
	// verdict-cache hits for the representatives.
	byKey := make(map[string]*batchEntry, len(work))
	var pending []*batchEntry
	for _, e := range work {
		if e.key != "" {
			if rep, ok := byKey[e.key]; ok {
				e.dupOf = rep.idx
				s.stats.batch.deduped.Add(1)
				continue
			}
			byKey[e.key] = e
			if s.results != nil {
				if v, ok := s.results.Get(e.key); ok {
					e.ctrs.hits.Add(1)
					verdicts[e.idx] = withSource(v.(*Verdict), "hit")
					stampID(verdicts[e.idx], e.req.ID)
					continue
				}
			}
		}
		pending = append(pending, e)
	}

	// Phase 3: partition the misses. Non-exhaustive verify entries of
	// one (width, property) form a group; groups of ≥ 2 take the
	// shared eval.RunMany pass, everything else (singletons,
	// exhaustive sweeps, faults, minset) falls back to the
	// per-request pipeline.
	groups := make(map[groupKey][]*batchEntry)
	var order []groupKey // deterministic group order
	var single []*batchEntry
	for _, e := range pending {
		if e.op == OpVerify && !e.req.Exhaustive && e.w.N <= network.LanesPerBatch {
			gk := groupKey{n: e.w.N, prop: e.p.Name()}
			if _, ok := groups[gk]; !ok {
				order = append(order, gk)
			}
			groups[gk] = append(groups[gk], e)
			continue
		}
		single = append(single, e)
	}
	for _, gk := range order {
		members := groups[gk]
		if len(members) < 2 {
			single = append(single, members...)
			continue
		}
		if err := s.computeGroup(ctx, members, verdicts); err != nil {
			if isCtxErr(err) {
				for _, e := range members {
					e.ctrs.canceled.Add(1)
				}
				return nil, err
			}
			for _, e := range members {
				e.ctrs.errors.Add(1)
				errs[e.idx], failed = err, true
			}
		}
	}

	// Phase 4: the fallback entries, through the exact Do pipeline
	// (cache → coalesce → pool) minus the re-resolution.
	for _, e := range single {
		v, err := s.doResolved(ctx, e)
		if err != nil {
			if isCtxErr(err) {
				e.ctrs.canceled.Add(1)
				return nil, err
			}
			e.ctrs.errors.Add(1)
			errs[e.idx], failed = err, true
			continue
		}
		stampID(v, e.req.ID)
		verdicts[e.idx] = v
	}

	// Phase 5: resolve intra-batch duplicates off their
	// representative — a copy with the duplicate's own ID, counted as
	// the cache hit it would have been sequentially.
	for i := range entries {
		e := &entries[i]
		if e.dupOf < 0 {
			continue
		}
		if repErr := errs[e.dupOf]; repErr != nil {
			e.ctrs.errors.Add(1)
			errs[e.idx], failed = repErr, true
			continue
		}
		if rep := verdicts[e.dupOf]; rep != nil {
			e.ctrs.hits.Add(1)
			cp := withSource(rep, "coalesced")
			// The representative's copy already echoes ITS tag;
			// overwrite unconditionally so an untagged duplicate does
			// not inherit its twin's ID.
			cp.ID = e.req.ID
			verdicts[e.idx] = cp
		}
	}

	if failed {
		return verdicts, &BatchError{Errs: errs}
	}
	return verdicts, nil
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// resolveEntry validates one batch entry and fills its resolved
// state, counting the request exactly like Do.
func (s *Session) resolveEntry(e *batchEntry) error {
	op := e.req.Op
	if op == "" {
		op = OpVerify
	}
	e.op = op
	ctrs := s.stats.forOp(op)
	if ctrs == nil {
		s.stats.unknown.requests.Add(1)
		s.stats.unknown.errors.Add(1)
		return badRequest("unknown op %q (want %s, %s or %s)", e.req.Op, OpVerify, OpFaults, OpMinset)
	}
	e.ctrs = ctrs
	ctrs.requests.Add(1)
	fail := func(err error) error {
		ctrs.errors.Add(1)
		return err
	}
	switch op {
	case OpVerify:
		w, digest, err := s.resolveRequest(e.req, s.maxLines)
		if err != nil {
			return fail(err)
		}
		p, err := propertyFor(e.req.Property, w.N, e.req.K)
		if err != nil {
			return fail(err)
		}
		e.w, e.digest, e.p = w, digest, p
		e.key = s.verifyKey(digest, p.Name(), e.req.Exhaustive)
	default: // OpFaults, OpMinset
		w, digest, p, mode, err := s.faultArgs(e.req)
		if err != nil {
			return fail(err)
		}
		e.w, e.digest, e.p, e.mode = w, digest, p, mode
		if op == OpFaults {
			e.key = faultsKey(digest, p, mode)
		} else {
			e.key = minsetKey(digest, p, mode, e.req.Exact)
		}
	}
	return nil
}

// doResolved routes one already-resolved entry through the
// per-request pipeline — Do minus the parsing.
func (s *Session) doResolved(ctx context.Context, e *batchEntry) (*Verdict, error) {
	switch e.op {
	case OpVerify:
		return s.doVerifyResolved(ctx, e.ctrs, e.req, e.w, e.digest, e.p, e.req.Exhaustive)
	case OpFaults:
		return s.doFaultsResolved(ctx, e.ctrs, e.req, e.w, e.digest, e.p, e.mode)
	default:
		return s.doMinsetResolved(ctx, e.ctrs, e.req, e.w, e.digest, e.p, e.mode, e.req.Exact)
	}
}

// computeGroup runs one same-width same-property group of verify
// entries through a shared eval.RunMany pass on the compute pool: the
// test stream is enumerated and transposed once per 64-lane block for
// the whole fleet, and each distinct program compiles once. Verdicts
// are byte-identical to sequential Do — RunMany's block schedule is
// exactly the sequential single-worker one — and fill the verdict
// cache under each member's own key. The pool hop bounds concurrent
// CPU exactly like single-shot computes; the pass computes under its
// own context, cancelled when the batch caller walks away.
func (s *Session) computeGroup(ctx context.Context, members []*batchEntry, verdicts []*Verdict) error {
	p := members[0].p
	progs := make([]*eval.Program, len(members))
	for i, m := range members {
		progs[i] = s.program(m.digest, m.w)
	}
	var group []*Verdict
	// A unique key: group passes never coalesce with each other (two
	// identical concurrent groups would waste, not corrupt — verdicts
	// are deterministic — and distinct batches rarely align anyway).
	key := "!group|" + strconv.FormatInt(s.uncached.Add(1), 10)
	_, _, err := s.startPool().do(ctx, key, func(cctx context.Context) (*Verdict, error) {
		group = make([]*Verdict, len(members))
		// Cluster fill: a member whose verdict a sibling shard already
		// caches is adopted from the peer and drops out of the engine
		// pass — same validation and cache fill as the per-request
		// pipeline's hook (stream overrides skip it, see withPeerFill).
		rest := make([]int, 0, len(members))
		for i, m := range members {
			m.ctrs.misses.Add(1)
			if s.fill != nil && s.stream == nil {
				if v, ok := s.peerProbe(cctx, m.req, OpVerify, m.digest); ok {
					group[i] = v
					if s.results != nil && m.key != "" {
						s.results.Add(m.key, v)
					}
					continue
				}
			}
			rest = append(rest, i)
		}
		if len(rest) == 0 {
			return nil, nil
		}
		for _, i := range rest {
			members[i].ctrs.computes.Add(1)
		}
		s.stats.batch.groups.Add(1)
		s.stats.batch.grouped.Add(int64(len(rest)))
		if s.computeHook != nil {
			s.computeHook()
		}
		restProgs := make([]*eval.Program, len(rest))
		for k, i := range rest {
			restProgs[k] = progs[i]
		}
		evs, err := eval.RunManyCtx(cctx, restProgs, s.binaryTests(p), verify.JudgeFor(p))
		if err != nil {
			return nil, err
		}
		for k, i := range rest {
			m := members[i]
			group[i] = checkVerdict(m.digest, p.Name(), false, Result{
				Holds:          evs[k].Holds,
				TestsRun:       evs[k].TestsRun,
				Counterexample: evs[k].In,
				Output:         evs[k].Out,
			})
			if s.results != nil && m.key != "" {
				s.results.Add(m.key, group[i])
			}
		}
		return nil, nil
	}, nil)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		if errors.Is(err, errSubmitterGone) {
			// The queue was full and our submission was abandoned by a
			// twin — impossible for unique keys, but retry for form.
			return s.computeGroup(ctx, members, verdicts)
		}
		return err
	}
	for i, m := range members {
		verdicts[m.idx] = withSource(group[i], "miss")
		stampID(verdicts[m.idx], m.req.ID)
	}
	return nil
}

// DoBatch routes a batch through the default Session.
func DoBatch(ctx context.Context, reqs []Request) ([]*Verdict, error) {
	return DefaultSession().DoBatch(ctx, reqs)
}
