package client

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"sortnets"
	"sortnets/internal/network"
	"sortnets/internal/serve"
)

// Serving benchmarks for the batch-first request model, all-miss by
// construction (a 1-entry verdict cache and thousands of distinct
// 8-line networks): every request pays parse + canonicalize + compile
// + minimal-test-set evaluation. Both report ns per REQUEST —
// BenchmarkServeBatch64 issues its b.N requests as NDJSON batches of
// 64, so the ratio of the two is the round-trip + shared-enumeration
// amortization the redesign buys. BENCH_PR5.json pins the two
// numbers via cmd/benchjson -bench 'BenchmarkServe' -pkg ./client.

const benchPool = 4096

var (
	benchNetsOnce sync.Once
	benchNets     []string
)

func benchNetworks() []string {
	benchNetsOnce.Do(func() {
		rng := rand.New(rand.NewSource(99))
		benchNets = make([]string, benchPool)
		for i := range benchNets {
			benchNets[i] = network.Random(8, 19, rng).Format()
		}
	})
	return benchNets
}

func newBenchServer(b *testing.B) (*Client, func()) {
	b.Helper()
	svc := serve.NewService(serve.Config{CacheSize: 1})
	ts := httptest.NewServer(svc.Handler())
	return New(ts.URL), func() {
		ts.Close()
		svc.Close()
	}
}

func BenchmarkServeSingleShot(b *testing.B) {
	cl, shutdown := newBenchServer(b)
	defer shutdown()
	nets := benchNetworks()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := cl.Do(ctx, sortnets.Request{Network: nets[i%benchPool]})
		if err != nil || v.Check == nil {
			b.Fatalf("request %d: %+v, %v", i, v, err)
		}
	}
}

func BenchmarkServeBatch64(b *testing.B) {
	cl, shutdown := newBenchServer(b)
	defer shutdown()
	nets := benchNetworks()
	ctx := context.Background()
	b.ResetTimer()
	for done := 0; done < b.N; {
		k := 64
		if b.N-done < k {
			k = b.N - done
		}
		reqs := make([]sortnets.Request, k)
		for j := range reqs {
			reqs[j] = sortnets.Request{Network: nets[(done+j)%benchPool]}
		}
		vs, err := cl.DoBatch(ctx, reqs)
		if err != nil || len(vs) != k {
			b.Fatalf("batch at %d: %d verdicts, %v", done, len(vs), err)
		}
		done += k
	}
}
