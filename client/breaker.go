package client

import (
	"sync"
	"time"
)

// breaker is a per-backend circuit breaker:
//
//	closed ──(threshold consecutive failures)──▶ open
//	open ──(cooldown elapses)──▶ half-open, admitting ONE trial
//	half-open ──trial succeeds──▶ closed
//	half-open ──trial fails──▶ open again (cooldown restarts)
//
// While open, Allow reports false and the Pool routes around the
// backend; the background health prober's /healthz results feed
// Success/Failure exactly like live requests do, so a recovered
// backend is readmitted within one probe interval (health-gated
// retry) instead of waiting for a caller to gamble a request on it.
type breaker struct {
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open → half-open delay

	mu       sync.Mutex
	state    int
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	trial    bool      // a half-open trial is in flight
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may be sent through this breaker
// now. In the half-open state exactly one caller is admitted as the
// trial; the rest are refused until its Success/Failure lands.
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.trial = true
		return true
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// Success records a healthy exchange (any valid HTTP response,
// including semantic 4xx errors): the breaker closes from any state.
func (b *breaker) Success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.trial = false
	b.mu.Unlock()
}

// Failure records a failed exchange (transport error, 5xx, 429/503
// shed). The threshold applies to consecutive failures while closed;
// a half-open trial failure re-opens immediately.
func (b *breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
		}
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.trial = false
	default: // open: a forced request failed; restart the cooldown
		b.openedAt = now
	}
}

// State reports the breaker's state name for stats.
func (b *breaker) State(now time.Time) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		if now.Sub(b.openedAt) >= b.cooldown {
			return "half-open" // next Allow will admit a trial
		}
		return "open"
	}
}
