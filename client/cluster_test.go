package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"sortnets"
	"sortnets/internal/serve"
)

// testNets is a pool of distinct valid networks for routing tests;
// their canonical digests spread over the ring.
func testNets(n int) []string {
	pairs := [][2]int{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}
	nets := make([]string, 0, n)
	for i := 0; len(nets) < n; i++ {
		a, b := pairs[i%len(pairs)], pairs[(i/len(pairs))%len(pairs)]
		nets = append(nets, fmt.Sprintf("n=4: [%d,%d][%d,%d]", a[0], a[1], b[0], b[1]))
	}
	return nets[:n]
}

// taggedHandler answers /do with a verdict whose digest names the
// backend, echoing the request ID — enough to see which shard served
// which entry. NDJSON bodies get one tagged BatchVerdict per line.
func taggedHandler(tag string, hits *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		if hits != nil {
			hits.Add(1)
		}
		if r.Header.Get("Content-Type") == "application/x-ndjson" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			dec := json.NewDecoder(r.Body)
			var out []byte
			for {
				var req sortnets.Request
				if err := dec.Decode(&req); err != nil {
					break
				}
				out = sortnets.AppendBatchVerdict(out, &sortnets.BatchVerdict{
					ID:      req.ID,
					Verdict: &sortnets.Verdict{ID: req.ID, Op: "verify", Digest: tag + ":" + req.ID},
				})
				out = append(out, '\n')
			}
			w.Write(out)
			return
		}
		var req sortnets.Request
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(&sortnets.Verdict{ID: req.ID, Op: "verify", Digest: tag + ":" + req.ID})
	})
}

// TestPoolShardRoutingOwner: with WithShardRouting every Do of a given
// network lands on the ring owner of its canonical digest — the same
// backend every time — and distinct networks spread over the cluster.
func TestPoolShardRoutingOwner(t *testing.T) {
	urls := make([]string, 3)
	servers := make([]*httptest.Server, 3)
	for i := range servers {
		servers[i] = httptest.NewServer(taggedHandler("s"+strconv.Itoa(i), nil))
		defer servers[i].Close()
		urls[i] = servers[i].URL
	}
	tagFor := make(map[string]string, 3)
	for i, u := range urls {
		tagFor[u] = "s" + strconv.Itoa(i)
	}

	p, err := NewPool(urls, WithHealthInterval(0), WithShardRouting(0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	used := map[string]bool{}
	for _, net := range testNets(12) {
		req := sortnets.Request{Network: net}
		key, ok := req.ShardKey()
		if !ok {
			t.Fatalf("network %q has no shard key", net)
		}
		wantTag := tagFor[p.ring.Owner(key)]
		for round := 0; round < 3; round++ {
			v, err := p.Do(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if got := v.Digest; got != wantTag+":" {
				t.Fatalf("network %q round %d served by %q, want owner %s", net, round, got, wantTag)
			}
		}
		used[wantTag] = true
	}
	if len(used) < 2 {
		t.Errorf("12 distinct networks all owned by one shard — ring not spreading: %v", used)
	}
	if st := p.Stats(); st.Routed != 36 || st.Unrouted != 0 {
		t.Errorf("routed=%d unrouted=%d, want 36/0", st.Routed, st.Unrouted)
	}
}

// TestPoolShardRoutingUnroutable: a request whose network cannot be
// resolved client-side carries no key and still works via round-robin.
func TestPoolShardRoutingUnroutable(t *testing.T) {
	srv := httptest.NewServer(taggedHandler("s0", nil))
	defer srv.Close()
	p, err := NewPool([]string{srv.URL}, WithHealthInterval(0), WithShardRouting(0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := p.Do(context.Background(), sortnets.Request{Network: "not a network"}); err != nil {
		t.Fatalf("unroutable request must still round-robin: %v", err)
	}
	if st := p.Stats(); st.Unrouted != 1 || st.Routed != 0 {
		t.Errorf("routed=%d unrouted=%d, want 0/1", st.Routed, st.Unrouted)
	}
}

// TestPoolShardRoutingFailover: when the owner shard is down, the
// request fails over along the ring walk to the next replica — the
// normal breaker/backoff machinery, just with ring order.
func TestPoolShardRoutingFailover(t *testing.T) {
	net := testNets(1)[0]
	key, _ := (&sortnets.Request{Network: net}).ShardKey()

	urls := make([]string, 3)
	servers := make([]*httptest.Server, 3)
	var deadHits atomic.Int64
	// Build the ring the pool will build to learn the owner, then make
	// exactly that backend dead.
	for i := range servers {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "down", http.StatusInternalServerError)
		}))
		defer servers[i].Close()
		urls[i] = servers[i].URL
	}
	p, err := NewPool(urls, WithHealthInterval(0), WithShardRouting(0),
		WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	replicas := p.ring.Replicas(key)
	owner, second := replicas[0], replicas[1]
	for i, u := range urls {
		i := i
		handler := taggedHandler("s"+strconv.Itoa(i), nil)
		if u == owner {
			handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				deadHits.Add(1)
				http.Error(w, "down", http.StatusInternalServerError)
			})
		}
		servers[i].Config.Handler = handler
	}
	secondTag := ""
	for i, u := range urls {
		if u == second {
			secondTag = "s" + strconv.Itoa(i)
		}
	}

	v, err := p.Do(context.Background(), sortnets.Request{Network: net})
	if err != nil {
		t.Fatalf("Do with a dead owner: %v", err)
	}
	if v.Digest != secondTag+":" {
		t.Fatalf("served by %q, want the ring's second replica %s", v.Digest, secondTag)
	}
	if deadHits.Load() != 1 {
		t.Errorf("dead owner hit %d times, want exactly 1 (then ring failover)", deadHits.Load())
	}
	if st := p.Stats(); st.Failovers < 1 {
		t.Errorf("stats %+v: want at least one failover", st)
	}
}

// TestPoolShardBatchSplitMerge: DoBatch under routing splits the batch
// by owner shard, runs the sub-batches concurrently, and re-merges the
// verdicts index-aligned; each backend sees only its own entries.
func TestPoolShardBatchSplitMerge(t *testing.T) {
	urls := make([]string, 3)
	servers := make([]*httptest.Server, 3)
	var hits [3]atomic.Int64
	for i := range servers {
		servers[i] = httptest.NewServer(taggedHandler("s"+strconv.Itoa(i), &hits[i]))
		defer servers[i].Close()
		urls[i] = servers[i].URL
	}
	tagFor := make(map[string]string, 3)
	for i, u := range urls {
		tagFor[u] = "s" + strconv.Itoa(i)
	}

	p, err := NewPool(urls, WithHealthInterval(0), WithShardRouting(0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nets := testNets(12)
	reqs := make([]sortnets.Request, len(nets))
	for i, n := range nets {
		reqs[i] = sortnets.Request{ID: strconv.Itoa(i), Network: n}
	}
	vs, err := p.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("DoBatch: %v", err)
	}
	owners := map[string]bool{}
	for i := range reqs {
		key, ok := reqs[i].ShardKey()
		if !ok {
			t.Fatalf("entry %d has no shard key", i)
		}
		want := tagFor[p.ring.Owner(key)] + ":" + reqs[i].ID
		if vs[i] == nil || vs[i].Digest != want {
			t.Errorf("entry %d = %+v, want digest %s (owner-served, index-aligned)", i, vs[i], want)
		}
		owners[p.ring.Owner(key)] = true
	}
	// Each participating shard saw exactly one sub-batch round trip.
	var total int64
	for i := range hits {
		total += hits[i].Load()
	}
	if int(total) != len(owners) {
		t.Errorf("%d round trips over %d owner shards, want one sub-batch each", total, len(owners))
	}
}

// TestHedgeKeepsPrimaryRetryAfterFloor is the regression test for the
// hedged-read floor bug: the primary sheds with Retry-After: 2, the
// hedge fails later with NO floor, and the floor returned must be the
// MAX across attempts (2s) — not the hedge's 0, which would erase the
// primary's explicit request for air.
func TestHedgeKeepsPrimaryRetryAfterFloor(t *testing.T) {
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(20 * time.Millisecond) // answer after the hedge launches
		w.Header().Set("Retry-After", "2")
		http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
	}))
	defer primary.Close()
	hedge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(60 * time.Millisecond) // answer after the primary's 429
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer hedge.Close()

	p, err := NewPool([]string{primary.URL, hedge.URL},
		WithHealthInterval(0), WithHedge(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	_, floor, err := p.sendHedged(context.Background(), p.backends[0], nil,
		sortnets.Request{Network: "n=2: [1,2]"}, 0)
	if err == nil {
		t.Fatal("both sends failed; sendHedged must return an error")
	}
	if floor != 2*time.Second {
		t.Fatalf("floor = %v, want the primary's 2s Retry-After (max across attempts)", floor)
	}
	if st := p.Stats(); st.Hedges != 1 {
		t.Errorf("stats %+v: want exactly one hedge", st)
	}
}

// TestHedgeFloorReachesBackoff drives the same scenario through Do
// with a fake clock (the sleepFn seam): the backoff before the retry
// must be floored by the primary's Retry-After even though the
// hedge's failure arrived last.
func TestHedgeFloorReachesBackoff(t *testing.T) {
	var pCalls, hCalls atomic.Int64
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if pCalls.Add(1) == 1 {
			time.Sleep(20 * time.Millisecond)
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(&sortnets.Verdict{Op: "verify", Digest: "d-recovered"})
	}))
	defer primary.Close()
	hedge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hCalls.Add(1) == 1 {
			time.Sleep(60 * time.Millisecond)
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(&sortnets.Verdict{Op: "verify", Digest: "d-recovered"})
	}))
	defer hedge.Close()

	p, err := NewPool([]string{primary.URL, hedge.URL},
		WithHealthInterval(0), WithHedge(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var floors []time.Duration
	p.sleepFn = func(ctx context.Context, attempt int, floor time.Duration) error {
		floors = append(floors, floor) // fake clock: record, never block
		return nil
	}

	v, err := p.Do(context.Background(), sortnets.Request{Network: "n=2: [1,2]"})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if v.Digest != "d-recovered" {
		t.Fatalf("digest %q, want d-recovered", v.Digest)
	}
	if len(floors) == 0 || floors[0] != 2*time.Second {
		t.Fatalf("backoff floors %v, want the first retry floored at 2s", floors)
	}
}

// TestDoBatchCancelMidRetryKeepsWonVerdicts is the regression test for
// the cancel-mid-retry bug: a batch whose first round lands some
// verdicts and requeues a shed entry, then is cancelled during the
// backoff, must return the won verdicts as partial results inside the
// BatchError contract — not discard them behind a bare (nil, err).
func TestDoBatchCancelMidRetryKeepsWonVerdicts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dec := json.NewDecoder(r.Body)
		w.Header().Set("Content-Type", "application/x-ndjson")
		var out []byte
		for {
			var req sortnets.Request
			if err := dec.Decode(&req); err != nil {
				break
			}
			line := sortnets.BatchVerdict{ID: req.ID}
			if req.ID == "b" {
				line.Error = &sortnets.RequestError{Status: http.StatusTooManyRequests, Msg: "shed"}
			} else {
				line.Verdict = &sortnets.Verdict{ID: req.ID, Op: "verify", Digest: "d-" + req.ID}
			}
			out = sortnets.AppendBatchVerdict(out, &line)
			out = append(out, '\n')
		}
		w.Write(out)
	}))
	defer srv.Close()

	p, err := NewPool([]string{srv.URL}, WithHealthInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.sleepFn = func(ctx context.Context, attempt int, floor time.Duration) error {
		return context.Canceled // the caller's ctx dies during the backoff
	}

	vs, err := p.DoBatch(context.Background(), []sortnets.Request{
		{ID: "a", Network: "n=2: [1,2]"},
		{ID: "b", Network: "n=2: [1,2]"},
	})
	var be *sortnets.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *sortnets.BatchError carrying the partial results", err)
	}
	if vs == nil || vs[0] == nil || vs[0].Digest != "d-a" {
		t.Fatalf("won verdict discarded: vs = %v, want index 0 to keep d-a", vs)
	}
	if vs[1] != nil || be.Errs[1] == nil {
		t.Errorf("cancelled entry: verdict %v err %v, want nil verdict + error", vs[1], be.Errs[1])
	}
	if be.Errs[0] != nil {
		t.Errorf("won entry carries error %v, want nil", be.Errs[0])
	}
}

// TestRetryAfterRoundTrip pins the server's Retry-After rendering to
// the client's floor parser: for every positive hint the parsed floor
// must cover the full hint (round UP, never to "0" — the historical
// truncation bug turned sub-second hints into no floor at all).
func TestRetryAfterRoundTrip(t *testing.T) {
	cases := []struct {
		d    time.Duration
		secs int
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Nanosecond, 1},
		{time.Millisecond, 1},
		{500 * time.Millisecond, 1}, // the regression: truncation said 0
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{2500 * time.Millisecond, 3},
	}
	for _, tc := range cases {
		secs := serve.RetryAfterSeconds(tc.d)
		if secs != tc.secs {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", tc.d, secs, tc.secs)
			continue
		}
		resp := &http.Response{Header: http.Header{}}
		if secs > 0 {
			resp.Header.Set("Retry-After", strconv.Itoa(secs))
		}
		floor := retryAfter(resp)
		if tc.d > 0 && floor < tc.d {
			t.Errorf("hint %v round-tripped to floor %v — client would retry too early", tc.d, floor)
		}
		if tc.d > 0 && floor == 0 {
			t.Errorf("hint %v round-tripped to NO floor", tc.d)
		}
	}
}
