package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"sortnets"
	"sortnets/internal/serve"
)

func newBatchTestServer(t *testing.T, cfg serve.Config) (*Client, func()) {
	t.Helper()
	svc := serve.NewService(cfg)
	ts := httptest.NewServer(svc.Handler())
	return New(ts.URL), func() {
		ts.Close()
		svc.Close()
	}
}

// TestDoBatchRoundTripMatchesLocalSession is the remote half of the
// batch property test: randomized mixed-op batches — malformed
// entries, duplicates and tagged IDs included — through client →
// NDJSON → sortnetd → Session.DoBatch must return byte-identical
// verdicts and the same typed per-entry errors as sequential local
// Session.Do calls.
func TestDoBatchRoundTripMatchesLocalSession(t *testing.T) {
	remote, shutdown := newBatchTestServer(t, serve.Config{Workers: 2})
	defer shutdown()
	local := sortnets.NewSession()
	defer local.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(23))

	for trial := 0; trial < 20; trial++ {
		var batch []sortnets.Request
		size := 1 + rng.Intn(10)
		for i := 0; i < size; i++ {
			switch rng.Intn(8) {
			case 0: // malformed entry
				batch = append(batch, []sortnets.Request{
					{Network: "n=4: [zap"},
					{Op: "conjure", Network: "n=2: [1,2]"},
					{},
					{Lines: 2, Comparators: [][2]int{{2, 1}}},
				}[rng.Intn(4)])
			case 1: // duplicate of an earlier entry, retagged
				if len(batch) > 0 {
					dup := batch[rng.Intn(len(batch))]
					dup.ID = randomNetworkText(rng, 3, 0) // any fresh short tag
					batch = append(batch, dup)
				}
			case 2:
				batch = append(batch, sortnets.Request{
					Op: sortnets.OpFaults, Network: randomNetworkText(rng, 5, 12),
				})
			case 3:
				batch = append(batch, sortnets.Request{
					Op: sortnets.OpMinset, Network: randomNetworkText(rng, 5, 10), ID: "m",
				})
			default:
				req := sortnets.Request{Network: randomNetworkText(rng, 8, 24)}
				if rng.Intn(4) == 0 {
					req.Exhaustive = true
				}
				if rng.Intn(2) == 0 {
					req.ID = "v"
				}
				batch = append(batch, req)
			}
		}

		wantV := make([]*sortnets.Verdict, len(batch))
		wantE := make([]error, len(batch))
		for i, req := range batch {
			wantV[i], wantE[i] = local.Do(ctx, req)
		}
		gotV, err := remote.DoBatch(ctx, batch)
		var be *sortnets.BatchError
		if err != nil && !errors.As(err, &be) {
			t.Fatalf("trial %d: whole-batch error: %v", trial, err)
		}
		for i := range batch {
			var gotE error
			if be != nil {
				gotE = be.Errs[i]
			}
			if (wantE[i] == nil) != (gotE == nil) {
				t.Fatalf("trial %d entry %d (%+v): local err %v, remote err %v", trial, i, batch[i], wantE[i], gotE)
			}
			if wantE[i] != nil {
				var lre, rre *sortnets.RequestError
				if !errors.As(wantE[i], &lre) || !errors.As(gotE, &rre) || lre.Status != rre.Status || lre.Msg != rre.Msg {
					t.Fatalf("trial %d entry %d: error divergence: local %v, remote %v", trial, i, wantE[i], gotE)
				}
				continue
			}
			lb, _ := sortnets.MarshalVerdict(wantV[i])
			rb, _ := sortnets.MarshalVerdict(gotV[i])
			if string(lb) != string(rb) {
				t.Fatalf("trial %d entry %d: verdicts differ:\nlocal:  %s\nremote: %s", trial, i, lb, rb)
			}
		}
	}
}

// TestStreamPipelined drives the full-duplex path hard: the producer
// refuses to send request k+1 until the verdict for request k has
// arrived, so the test only completes if responses really stream
// while the request body is still open.
func TestStreamPipelined(t *testing.T) {
	remote, shutdown := newBatchTestServer(t, serve.Config{})
	defer shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const total = 8
	nets := []string{
		"n=4: [1,2][3,4][1,3][2,4][2,3]",
		"n=4: [1,2][3,4]",
		"n=3: [1,2][2,3][1,2]",
	}
	acks := make(chan struct{}, total)
	acks <- struct{}{} // the first send needs no ack
	sent := 0
	var got []sortnets.BatchVerdict
	err := remote.Stream(ctx,
		func() (sortnets.Request, bool) {
			if sent == total {
				return sortnets.Request{}, false
			}
			select {
			case <-acks:
			case <-ctx.Done():
				return sortnets.Request{}, false
			}
			req := sortnets.Request{ID: string(rune('a' + sent)), Network: nets[sent%len(nets)]}
			sent++
			return req, true
		},
		func(line sortnets.BatchVerdict) error {
			got = append(got, line)
			acks <- struct{}{}
			return nil
		})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if len(got) != total {
		t.Fatalf("%d response lines, want %d", len(got), total)
	}
	for i, line := range got {
		wantID := string(rune('a' + i))
		if line.ID != wantID || line.Verdict == nil {
			t.Fatalf("line %d: id %q verdict %v, want id %q", i, line.ID, line.Verdict, wantID)
		}
	}
	// One-at-a-time pipelining means the later repeats of each network
	// were answered from the verdict cache, not recomputed.
	if got[total-1].Source != "hit" {
		t.Errorf("repeat request source %q, want hit", got[total-1].Source)
	}
}

// TestStreamAbortsOnCancel: cancelling the context tears the stream
// down promptly with the bare context error.
func TestStreamAbortsOnCancel(t *testing.T) {
	remote, shutdown := newBatchTestServer(t, serve.Config{})
	defer shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	err := remote.Stream(ctx,
		func() (sortnets.Request, bool) {
			return sortnets.Request{Network: "n=4: [1,2][3,4][1,3][2,4][2,3]"}, true // endless producer
		},
		func(line sortnets.BatchVerdict) error {
			cancel() // first verdict pulls the plug
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancelled stream took %v", d)
	}
}

// TestStreamAbortWithStuckProducer: aborting from on() must return
// promptly even when the producer is blocked inside next() waiting
// for a verdict that will never arrive — Stream never waits on the
// producer goroutine.
func TestStreamAbortWithStuckProducer(t *testing.T) {
	remote, shutdown := newBatchTestServer(t, serve.Config{})
	defer shutdown()
	sentinel := errors.New("abort")
	gate := make(chan struct{})
	defer close(gate) // let the leaked-until-now producer wind down
	first := true
	done := make(chan error, 1)
	go func() {
		done <- remote.Stream(context.Background(),
			func() (sortnets.Request, bool) {
				if first {
					first = false
					return sortnets.Request{Network: "n=2: [1,2]"}, true
				}
				<-gate // stuck: the ack this producer waits for never comes
				return sortnets.Request{}, false
			},
			func(sortnets.BatchVerdict) error { return sentinel })
	}()
	select {
	case err := <-done:
		if !errors.Is(err, sentinel) {
			t.Fatalf("want sentinel, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Stream hung waiting for a producer stuck in next()")
	}
}

// TestStreamOnError: the consumer can abort the stream by returning
// an error, which Stream relays.
func TestStreamOnError(t *testing.T) {
	remote, shutdown := newBatchTestServer(t, serve.Config{})
	defer shutdown()
	sentinel := errors.New("enough")
	n := 0
	err := remote.Stream(context.Background(),
		func() (sortnets.Request, bool) {
			n++
			return sortnets.Request{Network: "n=2: [1,2]"}, n <= 4
		},
		func(sortnets.BatchVerdict) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
}
