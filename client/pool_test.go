package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sortnets"
)

// TestBreakerStateMachine walks the full circuit: closed holds through
// threshold-1 failures, opens on the threshold-th, refuses while the
// cooldown runs, admits exactly one half-open trial after it, re-opens
// on a failed trial and closes on a successful one.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, 100*time.Millisecond)

	if !b.Allow(now) {
		t.Fatal("new breaker must be closed")
	}
	b.Failure(now)
	b.Failure(now)
	if !b.Allow(now) {
		t.Fatal("two of three failures must not open the breaker")
	}
	b.Success()
	b.Failure(now)
	b.Failure(now)
	if !b.Allow(now) {
		t.Fatal("Success must reset the consecutive-failure count")
	}

	// Third consecutive failure: open.
	b.Failure(now)
	b.Failure(now)
	b.Failure(now)
	if b.Allow(now) {
		t.Fatal("threshold consecutive failures must open the breaker")
	}
	if got := b.State(now); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	if b.Allow(now.Add(99 * time.Millisecond)) {
		t.Fatal("breaker admitted traffic before the cooldown elapsed")
	}

	// Cooldown over: exactly one trial is admitted.
	later := now.Add(100 * time.Millisecond)
	if !b.Allow(later) {
		t.Fatal("cooldown elapsed: the trial must be admitted")
	}
	if b.Allow(later) {
		t.Fatal("half-open must admit only ONE trial at a time")
	}
	if got := b.State(later); got != "half-open" {
		t.Fatalf("state = %q, want half-open", got)
	}

	// Failed trial: open again, full cooldown restarts.
	b.Failure(later)
	if b.Allow(later.Add(99 * time.Millisecond)) {
		t.Fatal("failed trial must restart the cooldown")
	}
	again := later.Add(100 * time.Millisecond)
	if !b.Allow(again) {
		t.Fatal("second cooldown elapsed: trial must be admitted")
	}

	// Successful trial: closed, failures forgotten.
	b.Success()
	if got := b.State(again); got != "closed" {
		t.Fatalf("state = %q, want closed", got)
	}
	b.Failure(again)
	b.Failure(again)
	if !b.Allow(again) {
		t.Fatal("counts from before the close must not linger")
	}
}

// verdictHandler answers every /do POST with a fixed verdict and 200s
// the /healthz probe.
func verdictHandler(digest string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		json.NewEncoder(w).Encode(&sortnets.Verdict{Op: "verify", Digest: digest})
	})
}

// TestPoolFailoverOn500: a backend answering 500 is abandoned and the
// request re-sent to the healthy one — same verdict, one failover.
func TestPoolFailoverOn500(t *testing.T) {
	var badHits atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badHits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(verdictHandler("d-good"))
	defer good.Close()

	p, err := NewPool([]string{bad.URL, good.URL},
		WithHealthInterval(0), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	v, err := p.Do(context.Background(), sortnets.Request{Network: "n=2: [1,2]"})
	if err != nil {
		t.Fatalf("Do through a half-broken pool: %v", err)
	}
	if v.Digest != "d-good" {
		t.Fatalf("verdict digest %q, want d-good", v.Digest)
	}
	if badHits.Load() != 1 {
		t.Errorf("bad backend hit %d times, want exactly 1 (then failover)", badHits.Load())
	}
	st := p.Stats()
	if st.Failovers < 1 || st.Retries < 1 {
		t.Errorf("stats %+v: want at least one retry and one failover", st)
	}
}

// TestPoolRetriesShed429: 429 sheds are transient — the pool backs off
// and re-sends until the backend admits the request, counting each
// shed as unavailable.
func TestPoolRetriesShed429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"server saturated"}`, http.StatusTooManyRequests)
			return
		}
		if got := r.Header.Get("X-Sortnetd-Retry"); got == "" {
			t.Error("re-sent request missing the retry header")
		}
		json.NewEncoder(w).Encode(&sortnets.Verdict{Op: "verify", Digest: "d-after-shed"})
	}))
	defer srv.Close()

	p, err := NewPool([]string{srv.URL},
		WithHealthInterval(0), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	v, err := p.Do(context.Background(), sortnets.Request{Network: "n=2: [1,2]"})
	if err != nil {
		t.Fatalf("Do against a shedding backend: %v", err)
	}
	if v.Digest != "d-after-shed" {
		t.Fatalf("digest %q, want d-after-shed", v.Digest)
	}
	if st := p.Stats(); st.Unavailable != 2 || st.Retries != 2 {
		t.Errorf("stats %+v: want unavailable=2 retries=2", st)
	}
}

// TestPoolSemanticErrorNotRetried: a 400 means the request itself is
// wrong — re-sending cannot cure it, so the pool must not try.
func TestPoolSemanticErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad network"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	p, err := NewPool([]string{srv.URL}, WithHealthInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	_, err = p.Do(context.Background(), sortnets.Request{Network: "nonsense"})
	var re *sortnets.RequestError
	if !errors.As(err, &re) || re.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want *sortnets.RequestError status 400", err)
	}
	if calls.Load() != 1 {
		t.Errorf("backend hit %d times for a semantic error, want 1", calls.Load())
	}
}

// TestPoolBatchPartialRetry: one shed line in a batch costs one small
// follow-up round trip carrying ONLY the failed entry; the verdicts
// already delivered are kept.
func TestPoolBatchPartialRetry(t *testing.T) {
	var call atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := call.Add(1)
		var reqs []sortnets.Request
		dec := json.NewDecoder(r.Body)
		for {
			var req sortnets.Request
			if err := dec.Decode(&req); err != nil {
				break
			}
			reqs = append(reqs, req)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		var out []byte
		for _, req := range reqs {
			line := sortnets.BatchVerdict{ID: req.ID}
			if n == 1 && req.ID == "b" {
				line.Error = &sortnets.RequestError{Status: http.StatusTooManyRequests, Msg: "shed"}
			} else {
				line.Verdict = &sortnets.Verdict{ID: req.ID, Op: "verify", Digest: "d-" + req.ID}
			}
			out = sortnets.AppendBatchVerdict(out, &line)
			out = append(out, '\n')
		}
		if n == 2 {
			if len(reqs) != 1 || reqs[0].ID != "b" {
				t.Errorf("retry round carried %d entries %v, want only the failed one", len(reqs), reqs)
			}
			if r.Header.Get("X-Sortnetd-Retry") == "" {
				t.Error("batch re-send missing the retry header")
			}
		}
		w.Write(out)
	}))
	defer srv.Close()

	p, err := NewPool([]string{srv.URL},
		WithHealthInterval(0), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	reqs := []sortnets.Request{
		{ID: "a", Network: "n=2: [1,2]"},
		{ID: "b", Network: "n=2: [1,2]"},
		{ID: "c", Network: "n=2: [1,2]"},
	}
	vs, err := p.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("DoBatch with a retryable entry: %v", err)
	}
	for i, want := range []string{"d-a", "d-b", "d-c"} {
		if vs[i] == nil || vs[i].Digest != want {
			t.Errorf("verdict %d = %+v, want digest %s", i, vs[i], want)
		}
	}
	if call.Load() != 2 {
		t.Errorf("backend saw %d rounds, want 2 (batch + partial retry)", call.Load())
	}
}

// TestPoolBatchSemanticEntryFinal: a 400 entry is not re-sent — it
// comes back inside the BatchError while its siblings keep verdicts.
func TestPoolBatchSemanticEntryFinal(t *testing.T) {
	var call atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		call.Add(1)
		var reqs []sortnets.Request
		dec := json.NewDecoder(r.Body)
		for {
			var req sortnets.Request
			if err := dec.Decode(&req); err != nil {
				break
			}
			reqs = append(reqs, req)
		}
		var out []byte
		for _, req := range reqs {
			line := sortnets.BatchVerdict{ID: req.ID}
			if req.ID == "bad" {
				line.Error = &sortnets.RequestError{Status: http.StatusBadRequest, Msg: "bad network"}
			} else {
				line.Verdict = &sortnets.Verdict{ID: req.ID, Op: "verify", Digest: "d-" + req.ID}
			}
			out = sortnets.AppendBatchVerdict(out, &line)
			out = append(out, '\n')
		}
		w.Write(out)
	}))
	defer srv.Close()

	p, err := NewPool([]string{srv.URL}, WithHealthInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	vs, err := p.DoBatch(context.Background(), []sortnets.Request{
		{ID: "ok", Network: "n=2: [1,2]"},
		{ID: "bad", Network: "nonsense"},
	})
	var be *sortnets.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *sortnets.BatchError", err)
	}
	if vs[0] == nil || vs[0].Digest != "d-ok" {
		t.Errorf("healthy sibling verdict = %+v, want d-ok", vs[0])
	}
	var re *sortnets.RequestError
	if !errors.As(be.Errs[1], &re) || re.Status != http.StatusBadRequest {
		t.Errorf("entry error = %v, want status 400", be.Errs[1])
	}
	if call.Load() != 1 {
		t.Errorf("backend saw %d rounds for a semantic failure, want 1", call.Load())
	}
}

// TestPoolHedgedRead: with hedging on, a slow primary is raced by a
// second backend and the fast answer wins well before the primary
// would have returned.
func TestPoolHedgedRead(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		time.Sleep(400 * time.Millisecond)
		json.NewEncoder(w).Encode(&sortnets.Verdict{Op: "verify", Digest: "d-slow"})
	}))
	defer slow.Close()
	fast := httptest.NewServer(verdictHandler("d-fast"))
	defer fast.Close()

	// The round-robin cursor starts at the first backend, so the slow
	// replica is the primary of the first Do.
	p, err := NewPool([]string{slow.URL, fast.URL},
		WithHealthInterval(0), WithHedge(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	start := time.Now()
	v, err := p.Do(context.Background(), sortnets.Request{Network: "n=2: [1,2]"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Digest != "d-fast" {
		t.Fatalf("digest %q, want the hedge's d-fast", v.Digest)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("hedged Do took %v, should beat the %v primary", elapsed, 400*time.Millisecond)
	}
	if st := p.Stats(); st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("stats %+v: want hedges=1 hedge_wins=1", st)
	}
}

// TestPoolProbeDrivesBreaker: the background /healthz prober opens the
// breaker of a dead backend without costing any caller a request, and
// readmits it within a probe interval of its recovery.
func TestPoolProbeDrivesBreaker(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && !healthy.Load() {
			http.Error(w, `{"status":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	p, err := NewPool([]string{srv.URL},
		WithHealthInterval(10*time.Millisecond), WithBreaker(2, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	waitState := func(want string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for {
			if st := p.Stats(); st.Backends[0].State == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("backend never reached state %q: %+v", want, p.Stats())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitState("open") // probes alone must open it
	healthy.Store(true)
	waitState("closed") // and readmit it on recovery

	if st := p.Stats(); st.Backends[0].Probes == 0 || st.Backends[0].ProbeFails == 0 {
		t.Errorf("probe counters missing: %+v", st.Backends[0])
	}
}

// TestPoolNeedsBackends: an empty URL list is a construction error.
func TestPoolNeedsBackends(t *testing.T) {
	if _, err := NewPool(nil); err == nil {
		t.Fatal("NewPool(nil) must fail")
	}
	if _, err := NewPool([]string{}); err == nil {
		t.Fatal("NewPool(empty) must fail")
	}
}
