package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sortnets"
)

// Pool is the resilient face of the one request model: a
// sortnets.Doer over N sortnetd replicas. Every operation is a pure
// function of the request (verdicts are deterministic and
// byte-identical across replicas, proven by the round-trip property
// tests), so the Pool may re-send a request as aggressively as it
// likes — to the same backend after a backoff, to the next healthy
// backend on failover, or speculatively to a second backend as a
// hedge — without ever changing the answer.
//
// Health plane: each backend carries a circuit breaker (closed →
// open after consecutive failures → half-open trial → closed), fed
// by live traffic AND by a background /healthz prober, so a replica
// that dies is routed around within the breaker threshold and one
// that recovers (or finishes draining) is readmitted within a probe
// interval. Retries use capped exponential backoff with full jitter,
// honour the caller's context deadline, and respect a server's
// Retry-After when it sheds with 429 or declines with 503.
//
// DoBatch retries are PARTIAL: entries already answered keep their
// verdicts, and only the failed remainder is re-sent — so one shed
// line in a 256-entry batch costs one small follow-up round trip,
// not a re-computation of the world.
type Pool struct {
	backends []*backend
	cfg      poolConfig

	rr      atomic.Uint64 // round-robin cursor
	rngMu   sync.Mutex
	rng     *rand.Rand // jitter source
	now     func() time.Time
	probeWG sync.WaitGroup
	stop    chan struct{}
	stopped sync.Once

	retries     atomic.Int64 // re-sent attempts (beyond each first try)
	failovers   atomic.Int64 // retries that switched backend
	hedges      atomic.Int64 // speculative second sends launched
	hedgeWins   atomic.Int64 // hedges whose response was used
	unavailable atomic.Int64 // 429/503 responses observed
}

type backend struct {
	url string
	c   *Client
	br  *breaker

	requests   atomic.Int64
	failures   atomic.Int64
	probes     atomic.Int64
	probeFails atomic.Int64
}

type poolConfig struct {
	hc               *http.Client
	maxAttempts      int
	backoffBase      time.Duration
	backoffCap       time.Duration
	probeInterval    time.Duration
	probeTimeout     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	hedgeDelay       time.Duration
	attemptTimeout   time.Duration
	seed             int64
}

// PoolOption configures a Pool.
type PoolOption func(*poolConfig)

// WithPoolHTTPClient substitutes the *http.Client shared by every
// backend (the per-backend default is the package default transport).
func WithPoolHTTPClient(hc *http.Client) PoolOption {
	return func(c *poolConfig) { c.hc = hc }
}

// WithMaxAttempts bounds the sends per logical Do/DoBatch, across all
// backends (first try included). Default 6.
func WithMaxAttempts(n int) PoolOption {
	return func(c *poolConfig) { c.maxAttempts = n }
}

// WithBackoff sets the retry backoff's base and cap. Sleep before
// attempt k is uniform in (0, min(cap, base·2^(k-1))] — full jitter —
// floored by any server Retry-After. Defaults 5ms / 500ms.
func WithBackoff(base, cap time.Duration) PoolOption {
	return func(c *poolConfig) { c.backoffBase, c.backoffCap = base, cap }
}

// WithHealthInterval sets the background /healthz probe cadence;
// 0 disables probing (breakers then learn only from live traffic).
// Default 500ms.
func WithHealthInterval(d time.Duration) PoolOption {
	return func(c *poolConfig) { c.probeInterval = d }
}

// WithBreaker tunes the per-backend circuit breaker: consecutive
// failures to open, and the open → half-open cooldown. Defaults 3 /
// 500ms.
func WithBreaker(threshold int, cooldown time.Duration) PoolOption {
	return func(c *poolConfig) { c.breakerThreshold, c.breakerCooldown = threshold, cooldown }
}

// WithHedge enables hedged single-shot reads: if a Do's primary send
// has not answered within d, the same request is speculatively sent
// to a second healthy backend and the first answer wins. Idempotency
// makes this safe; the tail-latency win costs at most one duplicate
// compute (usually a cache hit on the loser). 0 disables (default).
func WithHedge(d time.Duration) PoolOption {
	return func(c *poolConfig) { c.hedgeDelay = d }
}

// WithAttemptTimeout bounds each individual send; 0 (default) leaves
// only the caller's context and the transport's header timeout. Set
// it when retrying elsewhere beats waiting out a slow backend.
func WithAttemptTimeout(d time.Duration) PoolOption {
	return func(c *poolConfig) { c.attemptTimeout = d }
}

// WithJitterSeed seeds the backoff jitter (default 1; any fixed seed
// makes retry schedules reproducible for tests and chaos campaigns).
func WithJitterSeed(seed int64) PoolOption {
	return func(c *poolConfig) { c.seed = seed }
}

// NewPool builds a Pool over the given sortnetd base URLs and starts
// its health prober (stop it with Close).
func NewPool(urls []string, opts ...PoolOption) (*Pool, error) {
	if len(urls) == 0 {
		return nil, errors.New("client: pool needs at least one backend URL")
	}
	cfg := poolConfig{
		maxAttempts:      6,
		backoffBase:      5 * time.Millisecond,
		backoffCap:       500 * time.Millisecond,
		probeInterval:    500 * time.Millisecond,
		probeTimeout:     2 * time.Second,
		breakerThreshold: 3,
		breakerCooldown:  500 * time.Millisecond,
		seed:             1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxAttempts < 1 {
		cfg.maxAttempts = 1
	}
	if cfg.backoffBase <= 0 {
		cfg.backoffBase = time.Millisecond
	}
	if cfg.backoffCap < cfg.backoffBase {
		cfg.backoffCap = cfg.backoffBase
	}
	p := &Pool{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.seed)),
		now:  time.Now,
		stop: make(chan struct{}),
	}
	for _, u := range urls {
		var copts []Option
		if cfg.hc != nil {
			copts = append(copts, WithHTTPClient(cfg.hc))
		}
		p.backends = append(p.backends, &backend{
			url: u,
			c:   New(u, copts...),
			br:  newBreaker(cfg.breakerThreshold, cfg.breakerCooldown),
		})
	}
	if cfg.probeInterval > 0 {
		p.probeWG.Add(1)
		go p.probeLoop()
	}
	return p, nil
}

// Pool implements sortnets.Doer.
var _ sortnets.Doer = (*Pool)(nil)

// Close stops the health prober. In-flight requests finish normally.
func (p *Pool) Close() {
	p.stopped.Do(func() { close(p.stop) })
	p.probeWG.Wait()
}

// probeLoop probes every backend's /healthz each interval. Probe
// outcomes drive the same breakers as live traffic: a dead backend
// opens without costing a caller, a recovered one closes within one
// interval. Ticks overlap-protect themselves: a slow probe round
// simply absorbs the next tick.
func (p *Pool) probeLoop() {
	defer p.probeWG.Done()
	t := time.NewTicker(p.cfg.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			var wg sync.WaitGroup
			for _, b := range p.backends {
				wg.Add(1)
				go func(b *backend) {
					defer wg.Done()
					p.probe(b)
				}(b)
			}
			wg.Wait()
		}
	}
}

func (p *Pool) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.probeTimeout)
	defer cancel()
	b.probes.Add(1)
	if err := b.c.Healthz(ctx); err != nil {
		b.probeFails.Add(1)
		b.br.Failure(p.now())
		return
	}
	b.br.Success()
}

// pick chooses the backend for one attempt: round-robin over backends
// whose breaker admits traffic, avoiding the backend that just failed
// when any alternative exists. With every breaker open it still
// returns SOMETHING — a forced attempt doubles as a live probe, so an
// all-down pool recovers the instant any replica does.
func (p *Pool) pick(avoid *backend) *backend {
	n := len(p.backends)
	start := int(p.rr.Add(1)-1) % n
	now := p.now()
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			b := p.backends[(start+i)%n]
			if pass == 0 && (b == avoid && n > 1 || !b.br.Allow(now)) {
				continue // healthy backends that aren't the one that just failed
			}
			if pass == 1 && b == avoid && n > 1 {
				continue // any backend but the failed one
			}
			return b
		}
	}
	return p.backends[start]
}

// retryable reports whether an error may be cured by re-sending:
// transport failures, 5xx, and 429/503 sheds are; a semantic
// *sortnets.RequestError (the request itself is wrong) is not.
func retryable(err error) bool {
	var re *sortnets.RequestError
	if errors.As(err, &re) {
		return re.Status == http.StatusTooManyRequests || re.Status >= 500
	}
	return true
}

// sleep blocks for the attempt's backoff: full jitter over the capped
// exponential window, floored by the server's Retry-After, aborted by
// ctx.
func (p *Pool) sleep(ctx context.Context, attempt int, floor time.Duration) error {
	d := p.cfg.backoffCap
	if shift := attempt - 1; shift < 20 { // beyond 2^20·base the cap rules anyway
		if w := p.cfg.backoffBase << shift; w < d {
			d = w
		}
	}
	p.rngMu.Lock()
	d = time.Duration(p.rng.Int63n(int64(d)) + 1)
	p.rngMu.Unlock()
	if d < floor {
		d = floor
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// observe folds one exchange's outcome into the backend's breaker and
// counters, and extracts the Retry-After floor for the next backoff.
func (p *Pool) observe(b *backend, err error) (floor time.Duration) {
	if err == nil {
		b.br.Success()
		return 0
	}
	var ua *Unavailable
	if errors.As(err, &ua) {
		p.unavailable.Add(1)
		b.failures.Add(1)
		b.br.Failure(p.now())
		return ua.RetryAfter
	}
	var re *sortnets.RequestError
	if errors.As(err, &re) && re.Status < 500 && re.Status != http.StatusTooManyRequests {
		// A semantic rejection is a HEALTHY backend: the wire worked.
		b.br.Success()
		return 0
	}
	b.failures.Add(1)
	b.br.Failure(p.now())
	return 0
}

// sendOne performs one single-shot attempt against one backend.
func (p *Pool) sendOne(ctx context.Context, b *backend, req sortnets.Request, attempt int) (*sortnets.Verdict, time.Duration, error) {
	actx := ctx
	if p.cfg.attemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, p.cfg.attemptTimeout)
		defer cancel()
	}
	b.requests.Add(1)
	v, err := b.c.doAttempt(actx, req, attempt)
	floor := p.observe(b, err)
	return v, floor, err
}

// Do renders one verdict through the pool: pick a healthy backend,
// send, and on a retryable failure back off and fail over — the
// request is idempotent, so re-sending is always safe. With hedging
// enabled, a slow primary is raced by a second backend.
func (p *Pool) Do(ctx context.Context, req sortnets.Request) (*sortnets.Verdict, error) {
	var lastErr error
	var prev *backend
	var floor time.Duration
	for attempt := 0; attempt < p.cfg.maxAttempts; attempt++ {
		if attempt > 0 {
			p.retries.Add(1)
			if err := p.sleep(ctx, attempt, floor); err != nil {
				return nil, err
			}
		}
		b := p.pick(prev)
		if prev != nil && b != prev {
			p.failovers.Add(1)
		}
		var v *sortnets.Verdict
		var err error
		if p.cfg.hedgeDelay > 0 {
			v, floor, err = p.sendHedged(ctx, b, req, attempt)
		} else {
			v, floor, err = p.sendOne(ctx, b, req, attempt)
		}
		if err == nil {
			return v, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		if !retryable(err) {
			return nil, err
		}
		lastErr, prev = err, b
	}
	return nil, fmt.Errorf("client: %d attempts exhausted: %w", p.cfg.maxAttempts, lastErr)
}

// sendHedged races the primary against one speculative send to a
// second healthy backend, launched if the primary hasn't answered
// within the hedge delay. First usable answer wins; the loser is
// cancelled through the shared context.
func (p *Pool) sendHedged(ctx context.Context, primary *backend, req sortnets.Request, attempt int) (*sortnets.Verdict, time.Duration, error) {
	type result struct {
		v     *sortnets.Verdict
		floor time.Duration
		err   error
		from  *backend
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan result, 2)
	launch := func(b *backend) {
		go func() {
			v, floor, err := p.sendOne(hctx, b, req, attempt)
			ch <- result{v, floor, err, b}
		}()
	}
	launch(primary)
	outstanding := 1
	timer := time.NewTimer(p.cfg.hedgeDelay)
	defer timer.Stop()
	var lastErr result
	for {
		select {
		case <-timer.C:
			if hb := p.pick(primary); hb != primary {
				p.hedges.Add(1)
				launch(hb)
				outstanding++
			}
		case r := <-ch:
			outstanding--
			if r.err == nil || !retryable(r.err) {
				if r.err == nil && r.from != primary {
					p.hedgeWins.Add(1)
				}
				return r.v, r.floor, r.err
			}
			lastErr = r
			if outstanding == 0 {
				return nil, lastErr.floor, lastErr.err
			}
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
}

// entryRetryable reports whether a per-entry batch error may be cured
// by re-sending that entry: per-line sheds (429) and server-side
// failures (5xx, panic lines, compute timeouts) are; semantic 4xx are
// final.
func entryRetryable(err error) bool {
	var re *sortnets.RequestError
	if errors.As(err, &re) {
		return re.Status == http.StatusTooManyRequests || re.Status >= 500
	}
	return true
}

// DoBatch renders a whole batch through the pool with partial retry:
// entries that already have verdicts keep them, and only the failed
// remainder is re-sent (to the next healthy backend) each round. The
// result keeps Session.DoBatch's contract — index-aligned with reqs,
// per-entry failures inside a *sortnets.BatchError.
func (p *Pool) DoBatch(ctx context.Context, reqs []sortnets.Request) ([]*sortnets.Verdict, error) {
	if len(reqs) == 0 {
		return []*sortnets.Verdict{}, nil
	}
	out := make([]*sortnets.Verdict, len(reqs))
	finalErrs := make([]error, len(reqs))
	pending := make([]int, len(reqs))
	for i := range pending {
		pending[i] = i
	}
	var lastErr error
	var prev *backend
	var floor time.Duration
	sub := make([]sortnets.Request, 0, len(reqs))
	for attempt := 0; attempt < p.cfg.maxAttempts && len(pending) > 0; attempt++ {
		if attempt > 0 {
			p.retries.Add(1)
			if err := p.sleep(ctx, attempt, floor); err != nil {
				return nil, err
			}
		}
		b := p.pick(prev)
		if prev != nil && b != prev {
			p.failovers.Add(1)
		}
		sub = sub[:0]
		for _, idx := range pending {
			sub = append(sub, reqs[idx])
		}
		actx := ctx
		var cancel context.CancelFunc
		if p.cfg.attemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.cfg.attemptTimeout)
		}
		b.requests.Add(1)
		vs, err := b.c.doBatchAttempt(actx, sub, attempt)
		if cancel != nil {
			cancel()
		}
		var be *sortnets.BatchError
		switch {
		case err == nil:
			p.observe(b, nil)
			for k, idx := range pending {
				out[idx], finalErrs[idx] = vs[k], nil
			}
			pending = pending[:0]
		case errors.As(err, &be):
			// A healthy response with per-entry outcomes: keep the
			// successes, requeue only the transient failures.
			p.observe(b, nil)
			next := pending[:0]
			for k, idx := range pending {
				switch {
				case be.Errs[k] == nil:
					out[idx], finalErrs[idx] = vs[k], nil
				case entryRetryable(be.Errs[k]):
					finalErrs[idx] = be.Errs[k]
					next = append(next, idx)
				default:
					finalErrs[idx] = be.Errs[k]
				}
			}
			pending = next
			lastErr, prev = err, b
		default:
			floor = p.observe(b, err)
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			lastErr, prev = err, b
		}
	}
	failed := false
	for _, idx := range pending {
		if finalErrs[idx] == nil {
			finalErrs[idx] = lastErr
		}
	}
	for i := range finalErrs {
		if finalErrs[i] != nil {
			// Wrap non-Request errors so BatchError consumers get the
			// typed per-entry shape they already handle.
			var re *sortnets.RequestError
			if !errors.As(finalErrs[i], &re) {
				finalErrs[i] = &sortnets.RequestError{Status: http.StatusBadGateway, Msg: finalErrs[i].Error()}
			}
			failed = true
		}
	}
	if failed {
		return out, &sortnets.BatchError{Errs: finalErrs}
	}
	return out, nil
}

// BackendStats is one backend's slice of PoolStats.
type BackendStats struct {
	URL        string `json:"url"`
	State      string `json:"state"` // closed | open | half-open
	Requests   int64  `json:"requests"`
	Failures   int64  `json:"failures"`
	Probes     int64  `json:"probes"`
	ProbeFails int64  `json:"probe_fails"`
}

// PoolStats is a point-in-time snapshot of the pool's resilience
// counters.
type PoolStats struct {
	Backends    []BackendStats `json:"backends"`
	Retries     int64          `json:"retries"`
	Failovers   int64          `json:"failovers"`
	Hedges      int64          `json:"hedges"`
	HedgeWins   int64          `json:"hedge_wins"`
	Unavailable int64          `json:"unavailable"`
}

// Stats snapshots the pool.
func (p *Pool) Stats() PoolStats {
	st := PoolStats{
		Retries:     p.retries.Load(),
		Failovers:   p.failovers.Load(),
		Hedges:      p.hedges.Load(),
		HedgeWins:   p.hedgeWins.Load(),
		Unavailable: p.unavailable.Load(),
	}
	now := p.now()
	for _, b := range p.backends {
		st.Backends = append(st.Backends, BackendStats{
			URL:        b.url,
			State:      b.br.State(now),
			Requests:   b.requests.Load(),
			Failures:   b.failures.Load(),
			Probes:     b.probes.Load(),
			ProbeFails: b.probeFails.Load(),
		})
	}
	return st
}
