package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sortnets"
	"sortnets/internal/ring"
)

// Pool is the resilient face of the one request model: a
// sortnets.Doer over N sortnetd replicas. Every operation is a pure
// function of the request (verdicts are deterministic and
// byte-identical across replicas, proven by the round-trip property
// tests), so the Pool may re-send a request as aggressively as it
// likes — to the same backend after a backoff, to the next healthy
// backend on failover, or speculatively to a second backend as a
// hedge — without ever changing the answer.
//
// Health plane: each backend carries a circuit breaker (closed →
// open after consecutive failures → half-open trial → closed), fed
// by live traffic AND by a background /healthz prober, so a replica
// that dies is routed around within the breaker threshold and one
// that recovers (or finishes draining) is readmitted within a probe
// interval. Retries use capped exponential backoff with full jitter,
// honour the caller's context deadline, and respect a server's
// Retry-After when it sheds with 429 or declines with 503.
//
// DoBatch retries are PARTIAL: entries already answered keep their
// verdicts, and only the failed remainder is re-sent — so one shed
// line in a 256-entry batch costs one small follow-up round trip,
// not a re-computation of the world.
//
// Cluster plane (WithShardRouting): the backends become the member
// set of a consistent-hash ring keyed on each request's canonical
// digest (Request.ShardKey), so every client routes a given network
// to the same owner shard and the cluster's verdict caches partition
// instead of duplicating. Failover reuses the exact machinery above —
// the ring only reorders preference (owner first, then its ring
// successors), and DoBatch splits a batch by owner and re-merges the
// verdicts index-aligned.
type Pool struct {
	backends []*backend
	cfg      poolConfig

	//lint:ignore statscover rr is the round-robin cursor, not telemetry: its value is a rotation position with no operator meaning
	rr      atomic.Uint64 // round-robin cursor
	rngMu   sync.Mutex
	rng     *rand.Rand // jitter source
	now     func() time.Time
	sleepFn func(ctx context.Context, attempt int, floor time.Duration) error // p.sleep; swappable fake clock for tests
	probeWG sync.WaitGroup
	stop    chan struct{}
	stopped sync.Once

	ring    *ring.Ring          // nil unless WithShardRouting
	byURL   map[string]*backend // ring member URL -> backend
	keyMu   sync.Mutex
	keyMemo map[string]string // network text -> shard key ("" = unroutable)

	retries     atomic.Int64 // re-sent attempts (beyond each first try)
	failovers   atomic.Int64 // retries that switched backend
	hedges      atomic.Int64 // speculative second sends launched
	hedgeWins   atomic.Int64 // hedges whose response was used
	unavailable atomic.Int64 // 429/503 responses observed
	routed      atomic.Int64 // requests routed by digest to their owner shard
	unrouted    atomic.Int64 // requests with no shard key (malformed), round-robined
}

type backend struct {
	url string
	c   *Client
	br  *breaker

	requests   atomic.Int64
	failures   atomic.Int64
	probes     atomic.Int64
	probeFails atomic.Int64
}

type poolConfig struct {
	hc               *http.Client
	maxAttempts      int
	backoffBase      time.Duration
	backoffCap       time.Duration
	probeInterval    time.Duration
	probeTimeout     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	hedgeDelay       time.Duration
	attemptTimeout   time.Duration
	seed             int64
	shardRouting     bool
	shardVnodes      int
}

// PoolOption configures a Pool.
type PoolOption func(*poolConfig)

// WithPoolHTTPClient substitutes the *http.Client shared by every
// backend (the per-backend default is the package default transport).
func WithPoolHTTPClient(hc *http.Client) PoolOption {
	return func(c *poolConfig) { c.hc = hc }
}

// WithMaxAttempts bounds the sends per logical Do/DoBatch, across all
// backends (first try included). Default 6.
func WithMaxAttempts(n int) PoolOption {
	return func(c *poolConfig) { c.maxAttempts = n }
}

// WithBackoff sets the retry backoff's base and cap. Sleep before
// attempt k is uniform in (0, min(cap, base·2^(k-1))] — full jitter —
// floored by any server Retry-After. Defaults 5ms / 500ms.
func WithBackoff(base, cap time.Duration) PoolOption {
	return func(c *poolConfig) { c.backoffBase, c.backoffCap = base, cap }
}

// WithHealthInterval sets the background /healthz probe cadence;
// 0 disables probing (breakers then learn only from live traffic).
// Default 500ms.
func WithHealthInterval(d time.Duration) PoolOption {
	return func(c *poolConfig) { c.probeInterval = d }
}

// WithBreaker tunes the per-backend circuit breaker: consecutive
// failures to open, and the open → half-open cooldown. Defaults 3 /
// 500ms.
func WithBreaker(threshold int, cooldown time.Duration) PoolOption {
	return func(c *poolConfig) { c.breakerThreshold, c.breakerCooldown = threshold, cooldown }
}

// WithHedge enables hedged single-shot reads: if a Do's primary send
// has not answered within d, the same request is speculatively sent
// to a second healthy backend and the first answer wins. Idempotency
// makes this safe; the tail-latency win costs at most one duplicate
// compute (usually a cache hit on the loser). 0 disables (default).
func WithHedge(d time.Duration) PoolOption {
	return func(c *poolConfig) { c.hedgeDelay = d }
}

// WithAttemptTimeout bounds each individual send; 0 (default) leaves
// only the caller's context and the transport's header timeout. Set
// it when retrying elsewhere beats waiting out a slow backend.
func WithAttemptTimeout(d time.Duration) PoolOption {
	return func(c *poolConfig) { c.attemptTimeout = d }
}

// WithJitterSeed seeds the backoff jitter (default 1; any fixed seed
// makes retry schedules reproducible for tests and chaos campaigns).
func WithJitterSeed(seed int64) PoolOption {
	return func(c *poolConfig) { c.seed = seed }
}

// WithShardRouting turns the pool into a cluster client: the backend
// URLs become a consistent-hash ring and each request is sent to the
// shard owning its canonical digest, falling back to the next ring
// replica through the normal breaker/backoff path when the owner is
// down. Requests whose network cannot be resolved client-side carry
// no key and stay round-robin. vnodes <= 0 selects ring.DefaultVnodes.
//
// The backend URL LIST is the ring membership: every client and every
// sortnetd -peers flag must name the same set (order-insensitive) for
// the cluster's caches to partition cleanly.
func WithShardRouting(vnodes int) PoolOption {
	return func(c *poolConfig) { c.shardRouting, c.shardVnodes = true, vnodes }
}

// NewPool builds a Pool over the given sortnetd base URLs and starts
// its health prober (stop it with Close).
func NewPool(urls []string, opts ...PoolOption) (*Pool, error) {
	if len(urls) == 0 {
		return nil, errors.New("client: pool needs at least one backend URL")
	}
	cfg := poolConfig{
		maxAttempts:      6,
		backoffBase:      5 * time.Millisecond,
		backoffCap:       500 * time.Millisecond,
		probeInterval:    500 * time.Millisecond,
		probeTimeout:     2 * time.Second,
		breakerThreshold: 3,
		breakerCooldown:  500 * time.Millisecond,
		seed:             1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxAttempts < 1 {
		cfg.maxAttempts = 1
	}
	if cfg.backoffBase <= 0 {
		cfg.backoffBase = time.Millisecond
	}
	if cfg.backoffCap < cfg.backoffBase {
		cfg.backoffCap = cfg.backoffBase
	}
	p := &Pool{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.seed)),
		now:  time.Now,
		stop: make(chan struct{}),
	}
	p.sleepFn = p.sleep
	for _, u := range urls {
		var copts []Option
		if cfg.hc != nil {
			copts = append(copts, WithHTTPClient(cfg.hc))
		}
		p.backends = append(p.backends, &backend{
			url: u,
			c:   New(u, copts...),
			br:  newBreaker(cfg.breakerThreshold, cfg.breakerCooldown),
		})
	}
	if cfg.shardRouting {
		p.byURL = make(map[string]*backend, len(p.backends))
		for _, b := range p.backends {
			p.byURL[b.url] = b
		}
		p.ring = ring.New(urls, cfg.shardVnodes)
		p.keyMemo = make(map[string]string)
	}
	if cfg.probeInterval > 0 {
		p.probeWG.Add(1)
		go p.probeLoop()
	}
	return p, nil
}

// keyMemoCap bounds the text -> digest memo; a full memo is dropped
// wholesale (the working set of a load generator or proxy cycles).
const keyMemoCap = 8192

// shardKeyFor resolves the request's routing key, memoizing by network
// text (the overwhelmingly common wire form; comparator-form requests
// just resolve each time).
func (p *Pool) shardKeyFor(req *sortnets.Request) (string, bool) {
	memoable := req.Network != "" && req.Comparators == nil && req.Lines == 0
	if memoable {
		p.keyMu.Lock()
		k, ok := p.keyMemo[req.Network]
		p.keyMu.Unlock()
		if ok {
			return k, k != ""
		}
	}
	k, ok := req.ShardKey()
	if memoable {
		p.keyMu.Lock()
		if len(p.keyMemo) >= keyMemoCap {
			p.keyMemo = make(map[string]string)
		}
		p.keyMemo[req.Network] = k // "" records an unroutable network
		p.keyMu.Unlock()
	}
	return k, ok
}

// preferFor computes the request's failover preference order — the
// ring walk from its digest, mapped to backends — or nil when routing
// is off or the request has no key (then round-robin applies).
func (p *Pool) preferFor(req *sortnets.Request) []*backend {
	if p.ring == nil {
		return nil
	}
	key, ok := p.shardKeyFor(req)
	if !ok {
		p.unrouted.Add(1)
		return nil
	}
	p.routed.Add(1)
	return p.backendsFor(p.ring.Replicas(key))
}

func (p *Pool) backendsFor(urls []string) []*backend {
	out := make([]*backend, 0, len(urls))
	for _, u := range urls {
		if b := p.byURL[u]; b != nil {
			out = append(out, b)
		}
	}
	return out
}

// pickPrefer is pick with a preference order: the first breaker-open
// non-avoided backend in prefer, else (all breakers shut) the first
// non-avoided one, else the owner — mirroring pick's "always return
// SOMETHING so a forced attempt doubles as a probe" contract.
func (p *Pool) pickPrefer(prefer []*backend, avoid *backend) *backend {
	now := p.now()
	for pass := 0; pass < 2; pass++ {
		for _, b := range prefer {
			if b == avoid && len(prefer) > 1 {
				continue
			}
			if pass == 0 && !b.br.Allow(now) {
				continue
			}
			return b
		}
	}
	return prefer[0]
}

// pickFor dispatches to the ring preference order when one exists,
// else plain round-robin.
func (p *Pool) pickFor(prefer []*backend, avoid *backend) *backend {
	if len(prefer) > 0 {
		return p.pickPrefer(prefer, avoid)
	}
	return p.pick(avoid)
}

// Pool implements sortnets.Doer.
var _ sortnets.Doer = (*Pool)(nil)

// Close stops the health prober. In-flight requests finish normally.
func (p *Pool) Close() {
	p.stopped.Do(func() { close(p.stop) })
	p.probeWG.Wait()
}

// probeLoop probes every backend's /healthz each interval. Probe
// outcomes drive the same breakers as live traffic: a dead backend
// opens without costing a caller, a recovered one closes within one
// interval. Ticks overlap-protect themselves: a slow probe round
// simply absorbs the next tick.
func (p *Pool) probeLoop() {
	defer p.probeWG.Done()
	t := time.NewTicker(p.cfg.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			var wg sync.WaitGroup
			for _, b := range p.backends {
				wg.Add(1)
				go func(b *backend) {
					defer wg.Done()
					p.probe(b)
				}(b)
			}
			wg.Wait()
		}
	}
}

func (p *Pool) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.probeTimeout)
	defer cancel()
	b.probes.Add(1)
	if err := b.c.Healthz(ctx); err != nil {
		b.probeFails.Add(1)
		b.br.Failure(p.now())
		return
	}
	b.br.Success()
}

// pick chooses the backend for one attempt: round-robin over backends
// whose breaker admits traffic, avoiding the backend that just failed
// when any alternative exists. With every breaker open it still
// returns SOMETHING — a forced attempt doubles as a live probe, so an
// all-down pool recovers the instant any replica does.
func (p *Pool) pick(avoid *backend) *backend {
	n := len(p.backends)
	start := int(p.rr.Add(1)-1) % n
	now := p.now()
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			b := p.backends[(start+i)%n]
			if pass == 0 && (b == avoid && n > 1 || !b.br.Allow(now)) {
				continue // healthy backends that aren't the one that just failed
			}
			if pass == 1 && b == avoid && n > 1 {
				continue // any backend but the failed one
			}
			return b
		}
	}
	return p.backends[start]
}

// retryable reports whether an error may be cured by re-sending:
// transport failures, 5xx, and 429/503 sheds are; a semantic
// *sortnets.RequestError (the request itself is wrong) is not.
func retryable(err error) bool {
	var re *sortnets.RequestError
	if errors.As(err, &re) {
		return re.Status == http.StatusTooManyRequests || re.Status >= 500
	}
	return true
}

// sleep blocks for the attempt's backoff: full jitter over the capped
// exponential window, floored by the server's Retry-After, aborted by
// ctx.
func (p *Pool) sleep(ctx context.Context, attempt int, floor time.Duration) error {
	d := p.cfg.backoffCap
	if shift := attempt - 1; shift < 20 { // beyond 2^20·base the cap rules anyway
		if w := p.cfg.backoffBase << shift; w < d {
			d = w
		}
	}
	p.rngMu.Lock()
	d = time.Duration(p.rng.Int63n(int64(d)) + 1)
	p.rngMu.Unlock()
	if d < floor {
		d = floor
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// observe folds one exchange's outcome into the backend's breaker and
// counters, and extracts the Retry-After floor for the next backoff.
func (p *Pool) observe(b *backend, err error) (floor time.Duration) {
	if err == nil {
		b.br.Success()
		return 0
	}
	var ua *Unavailable
	if errors.As(err, &ua) {
		p.unavailable.Add(1)
		b.failures.Add(1)
		b.br.Failure(p.now())
		return ua.RetryAfter
	}
	var re *sortnets.RequestError
	if errors.As(err, &re) {
		if re.Status < 500 && re.Status != http.StatusTooManyRequests {
			// A semantic rejection is a HEALTHY backend: the wire worked.
			b.br.Success()
			return 0
		}
		b.failures.Add(1)
		b.br.Failure(p.now())
		// NDJSON per-line backpressure has no headers; the typed
		// error's retry_after field is the hint carrier there.
		return time.Duration(re.RetryAfter) * time.Second
	}
	b.failures.Add(1)
	b.br.Failure(p.now())
	return 0
}

// sendOne performs one single-shot attempt against one backend.
func (p *Pool) sendOne(ctx context.Context, b *backend, req sortnets.Request, attempt int) (*sortnets.Verdict, time.Duration, error) {
	actx := ctx
	if p.cfg.attemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, p.cfg.attemptTimeout)
		defer cancel()
	}
	b.requests.Add(1)
	v, err := b.c.doAttempt(actx, req, attempt)
	floor := p.observe(b, err)
	return v, floor, err
}

// Do renders one verdict through the pool: pick a backend (the
// digest's owner shard under WithShardRouting, round-robin
// otherwise), send, and on a retryable failure back off and fail
// over — the request is idempotent, so re-sending is always safe.
// With hedging enabled, a slow primary is raced by a second backend.
func (p *Pool) Do(ctx context.Context, req sortnets.Request) (*sortnets.Verdict, error) {
	var lastErr error
	var prev *backend
	var floor time.Duration
	prefer := p.preferFor(&req)
	for attempt := 0; attempt < p.cfg.maxAttempts; attempt++ {
		if attempt > 0 {
			p.retries.Add(1)
			if err := p.sleepFn(ctx, attempt, floor); err != nil {
				return nil, err
			}
		}
		b := p.pickFor(prefer, prev)
		if prev != nil && b != prev {
			p.failovers.Add(1)
		}
		var v *sortnets.Verdict
		var err error
		if p.cfg.hedgeDelay > 0 {
			v, floor, err = p.sendHedged(ctx, b, prefer, req, attempt)
		} else {
			v, floor, err = p.sendOne(ctx, b, req, attempt)
		}
		if err == nil {
			return v, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		if !retryable(err) {
			return nil, err
		}
		lastErr, prev = err, b
	}
	return nil, fmt.Errorf("client: %d attempts exhausted: %w", p.cfg.maxAttempts, lastErr)
}

// sendHedged races the primary against one speculative send to a
// second healthy backend (the next ring replica when routing is on),
// launched if the primary hasn't answered within the hedge delay.
// First usable answer wins; the loser is cancelled through the shared
// context. When every send fails, the returned floor is the MAX
// Retry-After observed across them: a hedge that fails cheaply (floor
// 0) must not erase the primary's 429 hint, or the next backoff would
// hammer a backend that explicitly asked for air.
func (p *Pool) sendHedged(ctx context.Context, primary *backend, prefer []*backend, req sortnets.Request, attempt int) (*sortnets.Verdict, time.Duration, error) {
	type result struct {
		v     *sortnets.Verdict
		floor time.Duration
		err   error
		from  *backend
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan result, 2)
	launch := func(b *backend) {
		go func() {
			v, floor, err := p.sendOne(hctx, b, req, attempt)
			ch <- result{v, floor, err, b}
		}()
	}
	launch(primary)
	outstanding := 1
	timer := time.NewTimer(p.cfg.hedgeDelay)
	defer timer.Stop()
	var lastErr result
	var maxFloor time.Duration
	for {
		select {
		case <-timer.C:
			if hb := p.pickFor(prefer, primary); hb != primary {
				p.hedges.Add(1)
				launch(hb)
				outstanding++
			}
		case r := <-ch:
			outstanding--
			if r.floor > maxFloor {
				maxFloor = r.floor
			}
			if r.err == nil || !retryable(r.err) {
				if r.err == nil && r.from != primary {
					p.hedgeWins.Add(1)
				}
				return r.v, maxFloor, r.err
			}
			lastErr = r
			if outstanding == 0 {
				return nil, maxFloor, lastErr.err
			}
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
}

// lineFloor is the backoff floor a per-entry batch error carries:
// the typed error's retry_after field, the headerless counterpart of
// the single-shot path's Retry-After header.
func lineFloor(err error) time.Duration {
	var re *sortnets.RequestError
	if errors.As(err, &re) {
		return time.Duration(re.RetryAfter) * time.Second
	}
	return 0
}

// entryRetryable reports whether a per-entry batch error may be cured
// by re-sending that entry: per-line sheds (429) and server-side
// failures (5xx, panic lines, compute timeouts) are; semantic 4xx are
// final.
func entryRetryable(err error) bool {
	var re *sortnets.RequestError
	if errors.As(err, &re) {
		return re.Status == http.StatusTooManyRequests || re.Status >= 500
	}
	return true
}

// DoBatch renders a whole batch through the pool with partial retry:
// entries that already have verdicts keep them, and only the failed
// remainder is re-sent (to the next healthy backend) each round. The
// result keeps Session.DoBatch's contract — index-aligned with reqs,
// per-entry failures inside a *sortnets.BatchError; a cancellation
// mid-retry returns the verdicts already won the same way rather than
// discarding them.
//
// Under WithShardRouting the batch is first SPLIT by owner shard:
// each entry goes to the shard owning its digest (unroutable entries
// form a round-robin group), the per-owner sub-batches run
// concurrently through the same partial-retry machinery, and the
// verdicts re-merge index-aligned.
func (p *Pool) DoBatch(ctx context.Context, reqs []sortnets.Request) ([]*sortnets.Verdict, error) {
	if len(reqs) == 0 {
		return []*sortnets.Verdict{}, nil
	}
	if p.ring == nil {
		return p.doBatchPrefer(ctx, reqs, nil)
	}

	type group struct {
		prefer []*backend
		idxs   []int
	}
	groups := make(map[string]*group) // owner URL; "" = unroutable
	var order []string                // deterministic send order
	for i := range reqs {
		owner := ""
		if key, ok := p.shardKeyFor(&reqs[i]); ok {
			owner = p.ring.Owner(key)
			p.routed.Add(1)
		} else {
			p.unrouted.Add(1)
		}
		g := groups[owner]
		if g == nil {
			g = &group{}
			if owner != "" {
				g.prefer = p.backendsFor(p.ring.Successors(owner))
			}
			groups[owner] = g
			order = append(order, owner)
		}
		g.idxs = append(g.idxs, i)
	}
	if len(order) == 1 {
		return p.doBatchPrefer(ctx, reqs, groups[order[0]].prefer)
	}

	// Disjoint index sets: each goroutine writes only its own slots.
	out := make([]*sortnets.Verdict, len(reqs))
	finalErrs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for _, owner := range order {
		g := groups[owner]
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			sub := make([]sortnets.Request, len(g.idxs))
			for k, idx := range g.idxs {
				sub[k] = reqs[idx]
			}
			vs, err := p.doBatchPrefer(ctx, sub, g.prefer)
			var be *sortnets.BatchError
			switch {
			case err == nil:
				for k, idx := range g.idxs {
					out[idx] = vs[k]
				}
			case errors.As(err, &be):
				for k, idx := range g.idxs {
					out[idx], finalErrs[idx] = vs[k], be.Errs[k]
				}
			default:
				for _, idx := range g.idxs {
					finalErrs[idx] = err
				}
			}
		}(g)
	}
	wg.Wait()
	return p.finishBatch(ctx, out, finalErrs)
}

// doBatchPrefer is the single-destination batch loop: all of reqs go
// to one backend per round (preferring the ring walk in prefer when
// non-nil), with per-entry partial retry across rounds.
func (p *Pool) doBatchPrefer(ctx context.Context, reqs []sortnets.Request, prefer []*backend) ([]*sortnets.Verdict, error) {
	out := make([]*sortnets.Verdict, len(reqs))
	finalErrs := make([]error, len(reqs))
	pending := make([]int, len(reqs))
	for i := range pending {
		pending[i] = i
	}
	var lastErr error
	var prev *backend
	var floor time.Duration
	won := 0 // verdicts landed in out
	sub := make([]sortnets.Request, 0, len(reqs))
	for attempt := 0; attempt < p.cfg.maxAttempts && len(pending) > 0; attempt++ {
		if attempt > 0 {
			p.retries.Add(1)
			if err := p.sleepFn(ctx, attempt, floor); err != nil {
				// Cancelled mid-backoff: verdicts already won are real —
				// surface them as partial results, not a bare error.
				if won == 0 {
					return nil, err
				}
				lastErr = err
				break
			}
		}
		b := p.pickFor(prefer, prev)
		if prev != nil && b != prev {
			p.failovers.Add(1)
		}
		sub = sub[:0]
		for _, idx := range pending {
			sub = append(sub, reqs[idx])
		}
		actx := ctx
		var cancel context.CancelFunc
		if p.cfg.attemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.cfg.attemptTimeout)
		}
		b.requests.Add(1)
		vs, err := b.c.doBatchAttempt(actx, sub, attempt)
		if cancel != nil {
			cancel()
		}
		var be *sortnets.BatchError
		switch {
		case err == nil:
			p.observe(b, nil)
			for k, idx := range pending {
				out[idx], finalErrs[idx] = vs[k], nil
			}
			won += len(pending)
			pending = pending[:0]
		case errors.As(err, &be):
			// A healthy response with per-entry outcomes: keep the
			// successes, requeue only the transient failures. The
			// NDJSON path has no headers, so a requeued line's
			// retry_after field is the backoff hint; the largest one
			// floors the next round's sleep.
			p.observe(b, nil)
			floor = 0
			next := pending[:0]
			for k, idx := range pending {
				switch {
				case be.Errs[k] == nil:
					out[idx], finalErrs[idx] = vs[k], nil
					won++
				case entryRetryable(be.Errs[k]):
					finalErrs[idx] = be.Errs[k]
					next = append(next, idx)
					if f := lineFloor(be.Errs[k]); f > floor {
						floor = f
					}
				default:
					finalErrs[idx] = be.Errs[k]
				}
			}
			pending = next
			lastErr, prev = err, b
		default:
			floor = p.observe(b, err)
			lastErr, prev = err, b
			if ctxErr := ctx.Err(); ctxErr != nil {
				if won == 0 {
					return nil, ctxErr
				}
				break
			}
		}
	}
	for _, idx := range pending {
		if finalErrs[idx] == nil {
			finalErrs[idx] = lastErr
		}
	}
	return p.finishBatch(ctx, out, finalErrs)
}

// finishBatch applies the BatchError contract: entries that never got
// a verdict or a typed error are stamped (ctx error or a wrapped
// transport failure as 502), and the pair is returned as partial
// results iff anything failed.
func (p *Pool) finishBatch(ctx context.Context, out []*sortnets.Verdict, finalErrs []error) ([]*sortnets.Verdict, error) {
	failed := false
	for i := range finalErrs {
		if out[i] == nil && finalErrs[i] == nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				finalErrs[i] = ctxErr
			} else {
				finalErrs[i] = errors.New("client: batch entry unresolved")
			}
		}
		if finalErrs[i] != nil {
			// Wrap non-Request errors so BatchError consumers get the
			// typed per-entry shape they already handle.
			var re *sortnets.RequestError
			if !errors.As(finalErrs[i], &re) {
				finalErrs[i] = &sortnets.RequestError{Status: http.StatusBadGateway, Msg: finalErrs[i].Error()}
			}
			failed = true
		}
	}
	if failed {
		return out, &sortnets.BatchError{Errs: finalErrs}
	}
	return out, nil
}

// BackendStats is one backend's slice of PoolStats.
type BackendStats struct {
	URL        string `json:"url"`
	State      string `json:"state"` // closed | open | half-open
	Requests   int64  `json:"requests"`
	Failures   int64  `json:"failures"`
	Probes     int64  `json:"probes"`
	ProbeFails int64  `json:"probe_fails"`
}

// PoolStats is a point-in-time snapshot of the pool's resilience
// counters.
type PoolStats struct {
	Backends    []BackendStats `json:"backends"`
	Retries     int64          `json:"retries"`
	Failovers   int64          `json:"failovers"`
	Hedges      int64          `json:"hedges"`
	HedgeWins   int64          `json:"hedge_wins"`
	Unavailable int64          `json:"unavailable"`
	Routed      int64          `json:"routed,omitempty"`   // digest-routed requests (WithShardRouting)
	Unrouted    int64          `json:"unrouted,omitempty"` // requests with no shard key
}

// Stats snapshots the pool.
func (p *Pool) Stats() PoolStats {
	st := PoolStats{
		Retries:     p.retries.Load(),
		Failovers:   p.failovers.Load(),
		Hedges:      p.hedges.Load(),
		HedgeWins:   p.hedgeWins.Load(),
		Unavailable: p.unavailable.Load(),
		Routed:      p.routed.Load(),
		Unrouted:    p.unrouted.Load(),
	}
	now := p.now()
	for _, b := range p.backends {
		st.Backends = append(st.Backends, BackendStats{
			URL:        b.url,
			State:      b.br.State(now),
			Requests:   b.requests.Load(),
			Failures:   b.failures.Load(),
			Probes:     b.probes.Load(),
			ProbeFails: b.probeFails.Load(),
		})
	}
	return st
}
