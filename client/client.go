// Package client is the remote face of the one request model: a
// *Client speaks the same sortnets.Request / sortnets.Verdict types
// as an in-process sortnets.Session, against a running sortnetd URL.
// Both satisfy sortnets.Doer — single-shot Do and batch-first
// DoBatch alike — so a caller swaps local ↔ remote by swapping a
// value:
//
//	var doer sortnets.Doer = sortnets.NewSession()
//	// ... or ...
//	doer = client.New("http://localhost:8357")
//	v, err := doer.Do(ctx, sortnets.Request{Network: "n=4: [1,2][3,4][1,3][2,4][2,3]"})
//	vs, err := doer.DoBatch(ctx, batch)
//
// DoBatch ships the whole batch as one NDJSON round trip to POST /do
// (one Request per line) and decodes one sortnets.BatchVerdict per
// line back; Stream is the pipelined form of the same protocol, for
// callers that produce requests and consume verdicts concurrently
// over one connection.
//
// The request's context governs the whole round trip; cancelling it
// tears down the HTTP request, which cancels the computation inside
// the server and releases its pool slot. Verdicts decode to the same
// bytes the Session would produce locally (asserted by the
// round-trip property test), and 4xx failures come back as the same
// *sortnets.RequestError a local Session returns — per entry, for
// batches.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"sortnets"
)

// Client calls a sortnetd instance. The zero value is not usable;
// build one with New.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (transports,
// test doubles, different timeouts). The default client (see
// defaultHTTPClient) bounds dialing, TLS handshakes and the wait for
// response headers so a blackholed backend fails instead of hanging
// forever; per-request deadlines still arrive via the context.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// defaultTransport is shared by every Client built without
// WithHTTPClient, so they pool connections together. Unlike
// http.DefaultTransport it bounds every phase that can hang on a dead
// or blackholed backend: dialing, the TLS handshake, and the wait for
// response headers. There is deliberately NO whole-response timeout —
// NDJSON streams are long-lived by design; cancel via the context.
var defaultTransport = &http.Transport{
	DialContext: (&net.Dialer{
		Timeout:   5 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	TLSHandshakeTimeout:   5 * time.Second,
	ResponseHeaderTimeout: 30 * time.Second,
	ExpectContinueTimeout: 1 * time.Second,
	MaxIdleConnsPerHost:   32,
	IdleConnTimeout:       90 * time.Second,
	ForceAttemptHTTP2:     true,
}

var defaultHTTPClient = &http.Client{Transport: defaultTransport}

// New returns a Client against a sortnetd base URL such as
// "http://localhost:8357".
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: defaultHTTPClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Unavailable is a backend that answered but declined the work: 429
// (admission control shed the request) or 503 (draining). It is
// transient by construction — the request never reached a verdict —
// so a Pool retries it on another backend, honoring RetryAfter when
// the server sent one.
type Unavailable struct {
	Status     int
	RetryAfter time.Duration // 0 when the server sent no Retry-After
	Msg        string
}

func (e *Unavailable) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("sortnetd: status %d: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("sortnetd: status %d", e.Status)
}

// unavailableStatus reports whether an HTTP status means "healthy
// protocol, backend declining work right now".
func unavailableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// retryAfter parses the response's Retry-After header (delta-seconds
// form only; sortnetd never sends HTTP-dates).
func retryAfter(resp *http.Response) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryHeader marks re-sent requests so the server's retries_seen
// counter can attribute load to failover/retry traffic.
const retryHeader = "X-Sortnetd-Retry"

// Cluster peer-fill protocol headers. A request carrying FillHeader
// is a fill-only probe: the receiving sortnetd answers from its
// verdict cache or says 404 — it never computes and never probes its
// own peers, which is what makes fill loops structurally impossible.
// PeerHeader carries the probing shard's -shard-id as a hop marker;
// a server that sees its OWN id refuses the probe (a misconfigured
// peer list pointing a shard at itself).
const (
	FillHeader = "X-Sortnetd-Fill"
	PeerHeader = "X-Sortnetd-Peer"
)

// Client implements sortnets.Doer.
var _ sortnets.Doer = (*Client)(nil)

// maxResponseBytes bounds decoded response bodies (a minset verdict
// lists at most a few thousand test strings).
const maxResponseBytes = 8 << 20

// Do posts the Request to the service's unified /do endpoint and
// decodes the Verdict. Source is taken from the X-Sortnetd-Cache
// header, so cache observability matches the in-process Session.
func (c *Client) Do(ctx context.Context, req sortnets.Request) (*sortnets.Verdict, error) {
	return c.doAttempt(ctx, req, 0)
}

// doAttempt is Do with the retry attempt number (0 = first send); a
// Pool's re-sends stamp it into the retry header so the server can
// count failover traffic.
func (c *Client) doAttempt(ctx context.Context, req sortnets.Request, attempt int) (*sortnets.Verdict, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/do", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if attempt > 0 {
		httpReq.Header.Set(retryHeader, strconv.Itoa(attempt))
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		// Surface the caller's own cancellation as the bare context
		// error, exactly like a local Session.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		hasMsg := json.Unmarshal(body, &e) == nil && e.Error != ""
		if unavailableStatus(resp.StatusCode) {
			return nil, &Unavailable{Status: resp.StatusCode, RetryAfter: retryAfter(resp), Msg: e.Error}
		}
		if hasMsg && resp.StatusCode < 500 {
			return nil, &sortnets.RequestError{Status: resp.StatusCode, Msg: e.Error}
		}
		return nil, fmt.Errorf("sortnetd: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var v sortnets.Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, fmt.Errorf("sortnetd: undecodable verdict: %w", err)
	}
	v.Source = resp.Header.Get("X-Sortnetd-Cache")
	return &v, nil
}

// Fill sends a fill-only cache probe for req: the peer answers from
// its verdict cache (ok=true) or reports a miss (ok=false, err=nil —
// a miss is a normal outcome, not a failure). from is the probing
// shard's id, carried as the loop-prevention hop marker. The peer
// never computes, so a probe's cost is bounded by one cache lookup
// plus the wire.
func (c *Client) Fill(ctx context.Context, req sortnets.Request, from string) (*sortnets.Verdict, bool, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/do", bytes.NewReader(payload))
	if err != nil {
		return nil, false, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(FillHeader, "1")
	if from != "" {
		httpReq.Header.Set(PeerHeader, from)
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, false, ctxErr
		}
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var v sortnets.Verdict
		if err := json.Unmarshal(body, &v); err != nil {
			return nil, false, fmt.Errorf("sortnetd: undecodable fill verdict: %w", err)
		}
		v.Source = resp.Header.Get("X-Sortnetd-Cache")
		return &v, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("sortnetd: fill status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
}

// DoBatch posts the whole batch to /do as one NDJSON round trip (one
// Request per line) and decodes the BatchVerdict lines back, with
// Session.DoBatch's exact contract: the result is index-aligned with
// reqs (the service answers in request order), per-entry failures
// come back as *sortnets.RequestError inside a *sortnets.BatchError
// alongside the partial verdicts, and each verdict's Source carries
// the per-line cache provenance (hit / coalesced / miss).
func (c *Client) DoBatch(ctx context.Context, reqs []sortnets.Request) ([]*sortnets.Verdict, error) {
	return c.doBatchAttempt(ctx, reqs, 0)
}

// doBatchAttempt is DoBatch with the retry attempt number (0 = first
// send), stamped into the retry header on re-sends.
func (c *Client) doBatchAttempt(ctx context.Context, reqs []sortnets.Request, attempt int) ([]*sortnets.Verdict, error) {
	if len(reqs) == 0 {
		return []*sortnets.Verdict{}, nil
	}
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	sc.body = sc.body[:0]
	for i := range reqs {
		sc.body = sortnets.AppendRequest(sc.body, &reqs[i])
		sc.body = append(sc.body, '\n')
	}
	resp, err := c.postNDJSON(ctx, bytes.NewReader(sc.body), attempt)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	verdicts := make([]*sortnets.Verdict, len(reqs))
	errs := make([]error, len(reqs))
	failed := false
	i := 0
	sc.br.Reset(resp.Body)
	defer sc.br.Reset(nil)
	for {
		var readErr error
		sc.line, readErr = readResponseLine(sc.br, sc.line[:0])
		if len(bytes.TrimSpace(sc.line)) == 0 {
			if readErr != nil {
				break
			}
			continue
		}
		var line sortnets.BatchVerdict
		if err := sortnets.UnmarshalBatchVerdictLine(sc.line, &line); err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("sortnetd: undecodable batch line %d: %w", i, err)
		}
		if i >= len(reqs) {
			return nil, fmt.Errorf("sortnetd: %d batch entries sent, more lines received", len(reqs))
		}
		switch {
		case line.Error != nil:
			errs[i], failed = line.Error, true
		case line.Verdict != nil:
			line.Verdict.Source = line.Source
			verdicts[i] = line.Verdict
		default:
			return nil, fmt.Errorf("sortnetd: batch line %d has neither verdict nor error", i)
		}
		i++
		if readErr != nil {
			break
		}
	}
	if i != len(reqs) {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("sortnetd: %d batch entries sent, %d lines received", len(reqs), i)
	}
	if failed {
		return verdicts, &sortnets.BatchError{Errs: errs}
	}
	return verdicts, nil
}

// batchScratch is DoBatch's reusable working set: the request body
// under construction, the response reader, and the current response
// line. Pooled so a steady stream of batches allocates neither
// buffers nor readers.
type batchScratch struct {
	body []byte
	br   *bufio.Reader
	line []byte
}

var batchScratchPool = sync.Pool{New: func() any {
	return &batchScratch{br: bufio.NewReaderSize(nil, 64<<10)}
}}

// readResponseLine appends one newline-terminated response line
// (without the newline) to buf. A non-nil error means the stream is
// done; any partial final line is still returned.
//
//sortnets:hotpath
func readResponseLine(br *bufio.Reader, buf []byte) ([]byte, error) {
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		switch err {
		case bufio.ErrBufferFull:
			continue
		case nil:
			return bytes.TrimSuffix(buf, []byte("\n")), nil
		default:
			return buf, err
		}
	}
}

// Stream is the pipelined form of the NDJSON batch protocol: one
// connection, requests flowing up while verdicts flow down. next is
// called for each request to send and ends the upstream by returning
// false; on receives every response line as it arrives, in request
// order (tag requests with IDs to correlate without counting) — a
// non-nil return aborts the stream with that error. Stream returns
// when the response stream ends: after all requests are answered, on
// abort, or on ctx cancellation.
//
// On early termination the producer goroutine is unblocked from its
// pipe write and exits after its current next() call returns; Stream
// deliberately does NOT wait for it, so a producer blocked inside
// next() (e.g. gated on verdicts that will no longer arrive) can
// never hang the caller. Gate any wait inside next() on ctx so the
// goroutine winds down promptly.
//
// Unlike DoBatch, Stream applies the server's adaptive chunking:
// whatever requests are pipelined when the server sweeps its reader
// become one batch (deduped/grouped together), so a fast producer
// gets batch throughput and a slow one per-request latency.
func (c *Client) Stream(ctx context.Context, next func() (sortnets.Request, bool), on func(sortnets.BatchVerdict) error) error {
	pr, pw := io.Pipe()
	//lint:ignore goroutineleak deliberately unawaited (doc above): the producer exits on pipe close, and waiting on it could hang the caller inside next()
	go func() {
		enc := json.NewEncoder(pw)
		for {
			req, ok := next()
			if !ok {
				pw.Close()
				return
			}
			if err := enc.Encode(&req); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
	}()
	resp, err := c.postNDJSON(ctx, pr, 0)
	if err != nil {
		pr.CloseWithError(err) // fail the producer's next pipe write
		return err
	}
	defer func() {
		resp.Body.Close()
		pr.CloseWithError(context.Canceled)
	}()
	received := 0
	dec := json.NewDecoder(resp.Body)
	for {
		var line sortnets.BatchVerdict
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			return fmt.Errorf("sortnetd: undecodable stream line %d: %w", received, err)
		}
		received++
		if err := on(line); err != nil {
			return err
		}
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return nil
}

// postNDJSON opens the batch protocol round trip and validates the
// response envelope.
func (c *Client) postNDJSON(ctx context.Context, body io.Reader, attempt int) (*http.Response, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/do", body)
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/x-ndjson")
	if attempt > 0 {
		httpReq.Header.Set(retryHeader, strconv.Itoa(attempt))
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		if unavailableStatus(resp.StatusCode) {
			return nil, &Unavailable{Status: resp.StatusCode, RetryAfter: retryAfter(resp), Msg: string(bytes.TrimSpace(raw))}
		}
		return nil, fmt.Errorf("sortnetd: batch status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	return resp, nil
}

// Healthz probes the service's liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sortnetd: healthz status %d", resp.StatusCode)
	}
	return nil
}

// Stats fetches the service's raw /stats body (shape:
// serve.StatsSnapshot).
func (c *Client) Stats(ctx context.Context) ([]byte, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sortnetd: stats status %d", resp.StatusCode)
	}
	return body, nil
}
