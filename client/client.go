// Package client is the remote face of the one request model: a
// *Client speaks the same sortnets.Request / sortnets.Verdict types
// as an in-process sortnets.Session, against a running sortnetd URL.
// Both satisfy sortnets.Doer, so a caller swaps local ↔ remote by
// swapping a value:
//
//	var doer sortnets.Doer = sortnets.NewSession()
//	// ... or ...
//	doer = client.New("http://localhost:8357")
//	v, err := doer.Do(ctx, sortnets.Request{Network: "n=4: [1,2][3,4][1,3][2,4][2,3]"})
//
// The request's context governs the whole round trip; cancelling it
// tears down the HTTP request, which cancels the computation inside
// the server and releases its pool slot. Verdicts decode to the same
// bytes the Session would produce locally (asserted by the
// round-trip property test), and 4xx failures come back as the same
// *sortnets.RequestError a local Session returns.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"sortnets"
)

// Client calls a sortnetd instance. The zero value is not usable;
// build one with New.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default is http.DefaultClient —
// deadlines are expected to arrive per-request via the context.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// New returns a Client against a sortnetd base URL such as
// "http://localhost:8357".
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Client implements sortnets.Doer.
var _ sortnets.Doer = (*Client)(nil)

// maxResponseBytes bounds decoded response bodies (a minset verdict
// lists at most a few thousand test strings).
const maxResponseBytes = 8 << 20

// Do posts the Request to the service's unified /do endpoint and
// decodes the Verdict. Source is taken from the X-Sortnetd-Cache
// header, so cache observability matches the in-process Session.
func (c *Client) Do(ctx context.Context, req sortnets.Request) (*sortnets.Verdict, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/do", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		// Surface the caller's own cancellation as the bare context
		// error, exactly like a local Session.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" && resp.StatusCode < 500 {
			return nil, &sortnets.RequestError{Status: resp.StatusCode, Msg: e.Error}
		}
		return nil, fmt.Errorf("sortnetd: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var v sortnets.Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, fmt.Errorf("sortnetd: undecodable verdict: %w", err)
	}
	v.Source = resp.Header.Get("X-Sortnetd-Cache")
	return &v, nil
}

// Healthz probes the service's liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sortnetd: healthz status %d", resp.StatusCode)
	}
	return nil
}

// Stats fetches the service's raw /stats body (shape:
// serve.StatsSnapshot).
func (c *Client) Stats(ctx context.Context) ([]byte, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sortnetd: stats status %d", resp.StatusCode)
	}
	return body, nil
}
