package client

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"

	"sortnets"
	"sortnets/internal/network"
	"sortnets/internal/serve"
)

// randomNetworkText grows a random standard network in the same
// spirit as the canon fuzz decoder: every draw is a valid circuit,
// so the property test explores circuit space, not parser space.
func randomNetworkText(rng *rand.Rand, maxN, maxComps int) string {
	n := 2 + rng.Intn(maxN-1)
	w := network.New(n)
	size := rng.Intn(maxComps + 1)
	for i := 0; i < size; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		w.AddPair(a, b)
	}
	return w.Format()
}

// TestRoundTripMatchesLocalSession is the satellite property test:
// for randomized networks and every operation, the remote path
// (client → sortnetd HTTP → Session) must return byte-identical
// Verdicts to a direct in-process Session.Do.
func TestRoundTripMatchesLocalSession(t *testing.T) {
	svc := serve.NewService(serve.Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()
	remote := New(ts.URL)
	local := sortnets.NewSession()
	defer local.Close()

	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		net := randomNetworkText(rng, 8, 24)
		reqs := []sortnets.Request{
			{Op: sortnets.OpVerify, Network: net},
			{Op: sortnets.OpVerify, Network: net, Exhaustive: true},
			{Op: sortnets.OpFaults, Network: net},
			{Op: sortnets.OpMinset, Network: net},
		}
		// Mergers need an even width; exercise the other properties on
		// a subset of trials.
		if trial%3 == 0 {
			reqs = append(reqs, sortnets.Request{Op: sortnets.OpVerify, Network: net, Property: "selector", K: 1})
		}
		for _, req := range reqs {
			lv, lerr := local.Do(ctx, req)
			rv, rerr := remote.Do(ctx, req)
			if (lerr == nil) != (rerr == nil) {
				t.Fatalf("net %s op %s: local err %v, remote err %v", net, req.Op, lerr, rerr)
			}
			if lerr != nil {
				// Errors must agree in type and status.
				var lre, rre *sortnets.RequestError
				if !errors.As(lerr, &lre) || !errors.As(rerr, &rre) || lre.Status != rre.Status {
					t.Fatalf("net %s op %s: error divergence: local %v, remote %v", net, req.Op, lerr, rerr)
				}
				continue
			}
			lb, err := json.Marshal(lv)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := json.Marshal(rv)
			if err != nil {
				t.Fatal(err)
			}
			if string(lb) != string(rb) {
				t.Fatalf("net %s op %s: verdicts differ:\nlocal:  %s\nremote: %s", net, req.Op, lb, rb)
			}
		}
	}
}

// TestRequestErrorsReconstructed: a 4xx from the service comes back
// as the same typed *sortnets.RequestError a local Session returns.
func TestRequestErrorsReconstructed(t *testing.T) {
	svc := serve.NewService(serve.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()
	c := New(ts.URL)

	_, err := c.Do(context.Background(), sortnets.Request{Network: "n=4: [zap"})
	var re *sortnets.RequestError
	if !errors.As(err, &re) || re.Status != 400 {
		t.Fatalf("want *RequestError with status 400, got %v", err)
	}
	_, err = c.Do(context.Background(), sortnets.Request{Lines: 2, Comparators: [][2]int{{2, 1}}})
	if !errors.As(err, &re) || re.Status != 422 {
		t.Fatalf("tangled network: want status 422, got %v", err)
	}
}

// TestClientCancellation: a cancelled context surfaces as the bare
// context error, like a local Session.
func TestClientCancellation(t *testing.T) {
	svc := serve.NewService(serve.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()
	c := New(ts.URL)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Do(ctx, sortnets.Request{Network: "n=2: [1,2]"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz: %v", err)
	}
}
