package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sortnets"
)

// TestObserveRequestErrorClassification pins the retry-contract rules
// observe() implements: a semantic 4xx (the caller's own bad request)
// is a HEALTHY backend — breaker Success, no failure counted, no
// backoff floor — while typed backpressure (429/503/504) counts as a
// backend failure and surfaces the error's retry_after field as the
// floor for the next backoff. These are the client-side invariants
// the retrycontract analyzer enforces statically.
func TestObserveRequestErrorClassification(t *testing.T) {
	p, err := NewPool([]string{"http://127.0.0.1:0"}, WithHealthInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	b := p.backends[0]

	// Prime the breaker to one failure short of opening: a semantic
	// rejection must RESET the consecutive count, not extend it.
	for i := 0; i < p.cfg.breakerThreshold-1; i++ {
		b.br.Failure(p.now())
	}
	floor := p.observe(b, &sortnets.RequestError{Status: http.StatusBadRequest, Msg: "bad network"})
	if floor != 0 {
		t.Errorf("semantic 400: floor = %v, want 0", floor)
	}
	if got := b.failures.Load(); got != 0 {
		t.Errorf("semantic 400 counted as backend failure: failures = %d", got)
	}
	for i := 0; i < p.cfg.breakerThreshold-1; i++ {
		if !b.br.Allow(p.now()) {
			t.Fatalf("breaker opened after %d failures post-reset: the 400 did not reset the count", i)
		}
		b.br.Failure(p.now())
	}

	// Typed backpressure: failure counted, retry_after becomes the
	// backoff floor in whole seconds.
	b.br.Success()
	if floor := p.observe(b, &sortnets.RequestError{Status: http.StatusTooManyRequests, RetryAfter: 2}); floor != 2*time.Second {
		t.Errorf("429 retry_after=2: floor = %v, want 2s", floor)
	}
	if floor := p.observe(b, &sortnets.RequestError{Status: http.StatusServiceUnavailable, RetryAfter: 1}); floor != time.Second {
		t.Errorf("503 retry_after=1: floor = %v, want 1s", floor)
	}
	if floor := p.observe(b, &sortnets.RequestError{Status: http.StatusGatewayTimeout, RetryAfter: 1}); floor != time.Second {
		t.Errorf("504 retry_after=1: floor = %v, want 1s", floor)
	}
	if got := b.failures.Load(); got != 3 {
		t.Errorf("backpressure failures = %d, want 3", got)
	}
	// A hintless 5xx still fails the backend, just with no floor.
	if floor := p.observe(b, &sortnets.RequestError{Status: http.StatusInternalServerError}); floor != 0 {
		t.Errorf("hintless 500: floor = %v, want 0", floor)
	}
}

// TestBatchRetryAfterFloorsBackoff drives the hint end to end through
// DoBatch's partial-retry loop with a fake clock (the sleepFn seam):
// a per-line 429 whose retry_after says 3 must floor the backoff
// before the re-send at 3s — the NDJSON path has no headers, so the
// typed error field is the only carrier.
func TestBatchRetryAfterFloorsBackoff(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		var line sortnets.BatchVerdict
		if calls.Add(1) == 1 {
			line = sortnets.BatchVerdict{ID: "a", Error: &sortnets.RequestError{
				Status: http.StatusTooManyRequests, Msg: "saturated", RetryAfter: 3,
			}}
		} else {
			line = sortnets.BatchVerdict{ID: "a", Verdict: &sortnets.Verdict{ID: "a", Op: "verify", Digest: "d-batch"}}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		out := sortnets.AppendBatchVerdict(nil, &line)
		w.Write(append(out, '\n'))
	}))
	defer srv.Close()

	p, err := NewPool([]string{srv.URL},
		WithHealthInterval(0), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var floors []time.Duration
	p.sleepFn = func(ctx context.Context, attempt int, floor time.Duration) error {
		floors = append(floors, floor) // fake clock: record, never block
		return nil
	}

	vs, err := p.DoBatch(context.Background(), []sortnets.Request{{ID: "a", Network: "n=4: [1,2][3,4][1,3][2,4][2,3]"}})
	if err != nil {
		t.Fatalf("DoBatch after one shed round: %v", err)
	}
	if len(vs) != 1 || vs[0] == nil || vs[0].Digest != "d-batch" {
		t.Fatalf("verdicts %+v, want the retried entry's verdict", vs)
	}
	if len(floors) != 1 {
		t.Fatalf("sleepFn called %d times, want 1 (one retry round)", len(floors))
	}
	if floors[0] != 3*time.Second {
		t.Errorf("backoff floor = %v, want 3s from the line's retry_after", floors[0])
	}
}
