// Benchmark harness: one benchmark per reproduced experiment E1–E13
// (see DESIGN.md §3 for the index and EXPERIMENTS.md for archived
// numbers), plus ablation benches for the design choices DESIGN.md §5
// calls out. Run with:
//
//	go test -bench=. -benchmem
package sortnets

import (
	"math/rand"
	"testing"

	"sortnets/internal/bitvec"
	"sortnets/internal/chains"
	"sortnets/internal/comb"
	"sortnets/internal/core"
	"sortnets/internal/eval"
	"sortnets/internal/faults"
	"sortnets/internal/gen"
	"sortnets/internal/network"
	"sortnets/internal/search"
	"sortnets/internal/verify"
)

// --- E1: sorter 0/1 test set (Theorem 2.2(i)) ---------------------------

// BenchmarkE1SorterBinaryTestSet streams and applies the full minimal
// 0/1 test set to a Batcher sorter at n=16: 65519 tests per iteration.
func BenchmarkE1SorterBinaryTestSet(b *testing.B) {
	const n = 16
	w := gen.Sorter(n)
	p := verify.Sorter{N: n}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verify.Verdict(w, p).Holds {
			b.Fatal("sorter rejected")
		}
	}
}

// --- E2: sorter permutation test set (Theorem 2.2(ii)) ------------------

// BenchmarkE2SorterPermTestSet builds the C(n,⌊n/2⌋)−1 chain
// permutations and runs them through a sorter at n=12 (923 tests).
func BenchmarkE2SorterPermTestSet(b *testing.B) {
	const n = 12
	w := gen.Sorter(n)
	p := verify.Sorter{N: n}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verify.VerdictPerms(w, p).Holds {
			b.Fatal("sorter rejected")
		}
	}
}

// --- E3/E4: selector test sets (Theorem 2.4) -----------------------------

// BenchmarkE3SelectorBinaryTestSet certifies a (3,16)-selector with
// its polynomial-size test set (693 tests instead of 65536).
func BenchmarkE3SelectorBinaryTestSet(b *testing.B) {
	const n, k = 16, 3
	w := gen.Selection(n, k)
	p := verify.Selector{N: n, K: k}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verify.Verdict(w, p).Holds {
			b.Fatal("selector rejected")
		}
	}
}

// BenchmarkE4SelectorPermTestSet builds the truncated-SCD B(n,k)
// permutation family at n=12, k=3.
func BenchmarkE4SelectorPermTestSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.SelectorPermTests(12, 3)) != 219 {
			b.Fatal("wrong family size")
		}
	}
}

// --- E5: merger test sets (Theorem 2.5) ----------------------------------

// BenchmarkE5MergerTestSets certifies Batcher's (16,16)-merger with
// the n²/4 binary tests and the n/2 permutation tests.
func BenchmarkE5MergerTestSets(b *testing.B) {
	const n = 32
	w := gen.HalfMerger(n)
	p := verify.Merger{N: n}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verify.Verdict(w, p).Holds {
			b.Fatal("merger rejected")
		}
		if !verify.VerdictPerms(w, p).Holds {
			b.Fatal("merger rejected on permutations")
		}
	}
}

// --- E6: Figure 1 -----------------------------------------------------------

// BenchmarkE6Trace re-runs the paper's worked example network on
// (4 1 3 2) with the step-by-step trace.
func BenchmarkE6Trace(b *testing.B) {
	w := network.MustParse("n=4: [1,3][2,4][1,2][3,4]")
	in := []int{4, 1, 3, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(w.Trace(in)) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// --- E7/E8: Lemma 2.1 construction -----------------------------------------

// BenchmarkE7BaseCases constructs and verifies the four Fig. 2 base
// networks.
func BenchmarkE7BaseCases(b *testing.B) {
	sigmas := []bitvec.Vec{
		bitvec.MustFromString("100"), bitvec.MustFromString("010"),
		bitvec.MustFromString("101"), bitvec.MustFromString("110"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sigmas {
			if err := core.VerifyAlmostSorter(core.MustAlmostSorter(s), s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE8AlmostSorter builds H_σ for every non-sorted σ at n=10
// (1013 constructions per iteration).
func BenchmarkE8AlmostSorter(b *testing.B) {
	const n = 10
	sigmas := bitvec.Collect(core.SorterBinaryTests(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sigmas {
			if core.MustAlmostSorter(s).Size() == 0 {
				b.Fatal("empty construction")
			}
		}
	}
}

// --- E9: Yao's comparison ----------------------------------------------------

// BenchmarkE9YaoComparison computes both closed-form bounds and their
// ratio across n = 2..64.
func BenchmarkE9YaoComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for n := 2; n <= 64; n++ {
			if comb.SorterBinaryTestSetSize(n).Sign() <= 0 {
				b.Fatal("bad size")
			}
			if comb.SorterPermTestSetSize(n).Sign() < 0 {
				b.Fatal("bad size")
			}
			_ = comb.PermToBinaryRatio(n)
		}
	}
}

// --- E10/E11: behaviour-space search (Section 3) ------------------------------

// BenchmarkE10Height1 computes the exact minimum test set for height-1
// networks at n=6 by behaviour exhaustion (720 behaviours).
func BenchmarkE10Height1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := search.MinimumTestSet(6, 1, search.SorterAccepts, 0)
		if err != nil || r.Size != 5 {
			b.Fatalf("unexpected result %v %v", r, err)
		}
	}
}

// BenchmarkE11Height2 computes the exact minimum test set for height-2
// networks at n=5 (9468 behaviours, answer 26 = full set).
func BenchmarkE11Height2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := search.MinimumTestSet(5, 2, search.SorterAccepts, 0)
		if err != nil || r.Size != 26 {
			b.Fatalf("unexpected result %v %v", r, err)
		}
	}
}

// --- E12: fault coverage -------------------------------------------------------

// BenchmarkE12FaultCoverage measures minimal-test-set fault coverage
// on the optimal 6-line sorter (58 faults × 57 tests worst case).
func BenchmarkE12FaultCoverage(b *testing.B) {
	w := gen.Sorter(6)
	fs := faults.Enumerate(w)
	tests := func() bitvec.Iterator { return core.SorterBinaryTests(6) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := faults.Measure(w, fs, tests, faults.ByProperty)
		if rep.Detectable == 0 {
			b.Fatal("no detectable faults")
		}
	}
}

// --- E13: verification cost ------------------------------------------------------

// BenchmarkE13GrowthExhaustive is the exhaustive 2ⁿ sweep at n=20 the
// minimal test set competes against (bit-parallel batch engine).
func BenchmarkE13GrowthExhaustive(b *testing.B) {
	const n = 20
	w := gen.Sorter(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !w.SortsAllBinary() {
			b.Fatal("sorter rejected")
		}
	}
}

// --- E14: permutation-space exact minimums ------------------------------------

// BenchmarkE14PermSpace computes the exact minimum permutation test
// set for n=4 unrestricted networks (confirming C(4,2)−1 = 5).
func BenchmarkE14PermSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := search.MinimumPermTestSet(4, 3, search.PermSorterAccepts, 0, 0)
		if err != nil || !r.Exact || r.Size != 5 {
			b.Fatalf("unexpected result %v %v", r, err)
		}
	}
}

// --- E16: fault detection matrix + minimal detecting set ------------------------

// BenchmarkE16DetectionMatrix builds the full test × fault detection
// matrix for the optimal 6-line sorter (57 tests × 58 faults, one
// streamed engine pass per fault) and greedily selects a minimal
// detecting set — the VLSI test-selection workload on the shared
// engine machinery.
func BenchmarkE16DetectionMatrix(b *testing.B) {
	w := gen.Sorter(6)
	fs := faults.Enumerate(w)
	tests := func() bitvec.Iterator { return core.SorterBinaryTests(6) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := faults.DetectionMatrix(w, fs, tests, faults.ByProperty)
		if len(m.MinimalDetectingSet()) == 0 {
			b.Fatal("empty detecting set")
		}
	}
}

// --- E15: wide-width certification ----------------------------------------------

// BenchmarkE15WideMerger certifies a 256-line Batcher merger with its
// 16384-vector test set — the sweep 2²⁵⁶ makes impossible.
func BenchmarkE15WideMerger(b *testing.B) {
	w := gen.HalfMerger(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verify.VerdictMergerWide(w).Holds {
			b.Fatal("merger rejected")
		}
	}
}

// BenchmarkE15WideSelector certifies a (2,192)-selection network with
// its polynomial test set.
func BenchmarkE15WideSelector(b *testing.B) {
	w := gen.Selection(192, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verify.VerdictSelectorWide(w, 2).Holds {
			b.Fatal("selector rejected")
		}
	}
}

// --- Ablations (DESIGN.md §5) ------------------------------------------------------

// BenchmarkAblationScalarSweep sweeps all 2²⁰ inputs through the
// scalar one-vector-at-a-time evaluator: the baseline the 64-lane
// batch engine (BenchmarkE13GrowthExhaustive) is measured against.
func BenchmarkAblationScalarSweep(b *testing.B) {
	const n = 20
	w := gen.Sorter(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := bitvec.All(n)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !w.ApplyVec(v).IsSorted() {
				b.Fatal("sorter rejected")
			}
		}
	}
}

// BenchmarkAblationParallelSweep is the goroutine-pooled scalar sweep,
// isolating what parallelism adds on top of streaming.
func BenchmarkAblationParallelSweep(b *testing.B) {
	const n = 16
	w := gen.Sorter(n)
	p := verify.Sorter{N: n}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verify.GroundTruthParallel(w, p, 0).Holds {
			b.Fatal("sorter rejected")
		}
	}
}

// BenchmarkAblationScalarVerdict runs the n=16 minimal sorter test
// set one vector at a time through ApplyVec — the pre-engine scalar
// baseline BenchmarkAblationBatchVerdict is measured against.
func BenchmarkAblationScalarVerdict(b *testing.B) {
	const n = 16
	w := gen.Sorter(n)
	p := verify.Sorter{N: n}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := p.BinaryTests()
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if !p.AcceptsBinary(v, w.ApplyVec(v)) {
				b.Fatal("sorter rejected")
			}
		}
	}
}

// BenchmarkAblationBatchVerdict runs the same test set through the
// compiled 64-lane engine (what every verdict now uses).
func BenchmarkAblationBatchVerdict(b *testing.B) {
	const n = 16
	w := gen.Sorter(n)
	p := verify.Sorter{N: n}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verify.VerdictBatch(w, p).Holds {
			b.Fatal("sorter rejected")
		}
	}
}

// BenchmarkAblationCompiledVerdictPrecompiled isolates what one-time
// compilation saves when the same network is judged repeatedly: the
// program and engine are built once outside the loop.
func BenchmarkAblationCompiledVerdictPrecompiled(b *testing.B) {
	const n = 16
	eng := NewEngine(Compile(gen.Sorter(n)), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.Run(core.SorterBinaryTests(n), eval.SortedJudge()).Holds {
			b.Fatal("sorter rejected")
		}
	}
}

// BenchmarkAblationEnginePooledVerdict is the n=18 minimal set on the
// engine's auto worker pool.
func BenchmarkAblationEnginePooledVerdict(b *testing.B) {
	const n = 18
	w := gen.Sorter(n)
	p := verify.Sorter{N: n}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verify.VerdictParallel(w, p, 0).Holds {
			b.Fatal("sorter rejected")
		}
	}
}

// BenchmarkE15WideMergerPooled is BenchmarkE15WideMerger with the
// test vectors spread over the engine's worker pool.
func BenchmarkE15WideMergerPooled(b *testing.B) {
	w := gen.HalfMerger(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verify.VerdictMergerWideParallel(w, 0).Holds {
			b.Fatal("merger rejected")
		}
	}
}

// BenchmarkAblationStreamingTests measures the streaming iterator
// (zero materialization) over the n=18 test set.
func BenchmarkAblationStreamingTests(b *testing.B) {
	const n = 18
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bitvec.Count(core.SorterBinaryTests(n)) != (1<<n)-n-1 {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkAblationMaterializedTests materializes the same test set
// into a slice first — the memory-hungry alternative.
func BenchmarkAblationMaterializedTests(b *testing.B) {
	const n = 18
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs := bitvec.Collect(core.SorterBinaryTests(n))
		if len(vs) != (1<<n)-n-1 {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkAblationGreedyVsExact compares the greedy upper bound used
// inside the exact hitting-set solver against the full branch and
// bound, on the height-2 n=5 failure family.
func BenchmarkAblationGreedyVsExact(b *testing.B) {
	behaviors, err := search.Closure(5, search.Comparators(5, 2), 0)
	if err != nil {
		b.Fatal(err)
	}
	fam := search.FailureFamily(5, behaviors, search.SorterAccepts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if search.MinHittingSet(fam) == 0 {
			b.Fatal("empty hitting set")
		}
	}
}

// BenchmarkAblationChainDecomposition isolates the SCD construction
// cost at n=16 (12870 chains).
func BenchmarkAblationChainDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(chains.Decompose(16)) != 12870 {
			b.Fatal("wrong chain count")
		}
	}
}

// BenchmarkAblationBatchEvaluation measures raw comparator throughput
// of the 64-lane batch engine: evaluations/sec = 64 × b.N × size.
func BenchmarkAblationBatchEvaluation(b *testing.B) {
	const n = 32
	w := gen.OddEvenMergeSort(n)
	rng := rand.New(rand.NewSource(1))
	var vs []bitvec.Vec
	for i := 0; i < 64; i++ {
		vs = append(vs, bitvec.New(n, rng.Uint64()&(uint64(1)<<n-1)))
	}
	batch := network.LoadVecs(n, vs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ApplyBatch(batch)
	}
}

// BenchmarkAblationLemmaConstructionWorstCase isolates the most
// expensive single H_σ construction at n=16.
func BenchmarkAblationLemmaConstructionWorstCase(b *testing.B) {
	sigma := bitvec.MustFromString("1111111111111110")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.MustAlmostSorter(sigma).Size() == 0 {
			b.Fatal("empty")
		}
	}
}
