package sortnets

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"
)

// Hand-rolled wire codec for the NDJSON hot path. The serve layer
// answers thousands of batch lines per second; reflection-driven
// encoding/json costs several allocations per line on both sides of
// the wire. The encoders here are append-style — they write into a
// caller-owned buffer and allocate nothing — and produce output
// byte-identical to encoding/json for the Request/Verdict wire types
// (same field order, same omitempty decisions, same string escaping
// including HTML-safe < forms, same number formatting), which
// the wire tests assert by differential fuzzing against
// encoding/json. The decoders share one tokenizer: the request-line
// form is strict (unknown fields and trailing data are errors,
// matching the json.Decoder + DisallowUnknownFields the server used
// historically), the batch-verdict form is lenient (unknown fields
// skipped, matching json.Unmarshal on the client).

// --- Encoding ------------------------------------------------------------

const hexDigits = "0123456789abcdef"

// appendJSONString appends the encoding/json rendering of s: quoted,
// with ", \ and control characters escaped, <, > and & HTML-escaped
// to < forms, invalid UTF-8 escaped as �, and U+2028 /
// U+2029 escaped.
//
//sortnets:hotpath
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control characters and the HTML-sensitive <, >, &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// jsonSafe[b] reports that ASCII byte b passes through a JSON string
// unescaped (encoding/json's default HTML-escaping table).
var jsonSafe = func() (t [utf8.RuneSelf]bool) {
	for b := 0; b < utf8.RuneSelf; b++ {
		t[b] = b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
	}
	return
}()

// appendJSONFloat appends encoding/json's float rendering: shortest
// form, 'f' format inside [1e-6, 1e21), 'e' with a trimmed exponent
// outside.
//
//sortnets:hotpath
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// fieldSep appends the separator before a field: '{' for the first,
// ',' after.
//
//sortnets:hotpath
func fieldSep(dst []byte, first *bool) []byte {
	if *first {
		*first = false
		return append(dst, '{')
	}
	return append(dst, ',')
}

//sortnets:hotpath
func appendStringField(dst []byte, first *bool, name, v string) []byte {
	dst = fieldSep(dst, first)
	dst = append(dst, '"')
	dst = append(dst, name...)
	dst = append(dst, '"', ':')
	return appendJSONString(dst, v)
}

//sortnets:hotpath
func appendIntField(dst []byte, first *bool, name string, v int) []byte {
	dst = fieldSep(dst, first)
	dst = append(dst, '"')
	dst = append(dst, name...)
	dst = append(dst, '"', ':')
	return strconv.AppendInt(dst, int64(v), 10)
}

//sortnets:hotpath
func appendBoolField(dst []byte, first *bool, name string, v bool) []byte {
	dst = fieldSep(dst, first)
	dst = append(dst, '"')
	dst = append(dst, name...)
	dst = append(dst, '"', ':')
	return strconv.AppendBool(dst, v)
}

// AppendRequest appends the JSON encoding of r, byte-identical to
// json.Marshal(r), and returns the extended buffer. The client's
// NDJSON encoder uses it to build batch bodies without per-line
// reflection.
//
//sortnets:hotpath
func AppendRequest(dst []byte, r *Request) []byte {
	first := true
	if r.ID != "" {
		dst = appendStringField(dst, &first, "id", r.ID)
	}
	if r.Op != "" {
		dst = appendStringField(dst, &first, "op", r.Op)
	}
	if r.Network != "" {
		dst = appendStringField(dst, &first, "network", r.Network)
	}
	if r.Lines != 0 {
		dst = appendIntField(dst, &first, "lines", r.Lines)
	}
	if len(r.Comparators) != 0 {
		dst = fieldSep(dst, &first)
		dst = append(dst, `"comparators":[`...)
		for i, p := range r.Comparators {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, '[')
			dst = strconv.AppendInt(dst, int64(p[0]), 10)
			dst = append(dst, ',')
			dst = strconv.AppendInt(dst, int64(p[1]), 10)
			dst = append(dst, ']')
		}
		dst = append(dst, ']')
	}
	if r.Property != "" {
		dst = appendStringField(dst, &first, "property", r.Property)
	}
	if r.K != 0 {
		dst = appendIntField(dst, &first, "k", r.K)
	}
	if r.Exhaustive {
		dst = appendBoolField(dst, &first, "exhaustive", r.Exhaustive)
	}
	if r.Mode != "" {
		dst = appendStringField(dst, &first, "mode", r.Mode)
	}
	if r.Exact {
		dst = appendBoolField(dst, &first, "exact", r.Exact)
	}
	if first {
		return append(dst, '{', '}')
	}
	return append(dst, '}')
}

// AppendVerdict appends the JSON encoding of v, byte-identical to
// json.Marshal(v) (and therefore to MarshalVerdict).
//
//sortnets:hotpath
func AppendVerdict(dst []byte, v *Verdict) []byte {
	first := true
	if v.ID != "" {
		dst = appendStringField(dst, &first, "id", v.ID)
	}
	dst = appendStringField(dst, &first, "op", v.Op)
	dst = appendStringField(dst, &first, "digest", v.Digest)
	dst = appendStringField(dst, &first, "property", v.Property)
	if v.Check != nil {
		dst = fieldSep(dst, &first)
		dst = append(dst, `"check":`...)
		dst = appendCheckVerdict(dst, v.Check)
	}
	if v.Faults != nil {
		dst = fieldSep(dst, &first)
		dst = append(dst, `"faults":`...)
		dst = appendFaultsVerdict(dst, v.Faults)
	}
	if v.Minset != nil {
		dst = fieldSep(dst, &first)
		dst = append(dst, `"minset":`...)
		dst = appendMinsetVerdict(dst, v.Minset)
	}
	return append(dst, '}')
}

//sortnets:hotpath
func appendCheckVerdict(dst []byte, c *CheckVerdict) []byte {
	first := true
	if c.Exhaustive {
		dst = appendBoolField(dst, &first, "exhaustive", c.Exhaustive)
	}
	dst = appendBoolField(dst, &first, "holds", c.Holds)
	dst = appendIntField(dst, &first, "testsRun", c.TestsRun)
	if c.Counterexample != "" {
		dst = appendStringField(dst, &first, "counterexample", c.Counterexample)
	}
	if c.Output != "" {
		dst = appendStringField(dst, &first, "output", c.Output)
	}
	return append(dst, '}')
}

//sortnets:hotpath
func appendFaultsVerdict(dst []byte, f *FaultsVerdict) []byte {
	first := true
	dst = appendStringField(dst, &first, "mode", f.Mode)
	dst = appendIntField(dst, &first, "faults", f.Faults)
	dst = appendIntField(dst, &first, "detectable", f.Detectable)
	dst = appendIntField(dst, &first, "detected", f.Detected)
	dst = fieldSep(dst, &first)
	dst = append(dst, `"coverage":`...)
	dst = appendJSONFloat(dst, f.Coverage)
	return append(dst, '}')
}

//sortnets:hotpath
func appendMinsetVerdict(dst []byte, m *MinsetVerdict) []byte {
	first := true
	dst = appendStringField(dst, &first, "mode", m.Mode)
	dst = appendIntField(dst, &first, "faults", m.Faults)
	dst = appendIntField(dst, &first, "detectable", m.Detectable)
	dst = appendIntField(dst, &first, "detected", m.Detected)
	dst = appendIntField(dst, &first, "fullTests", m.FullTests)
	dst = appendIntField(dst, &first, "size", m.Size)
	dst = appendBoolField(dst, &first, "exact", m.Exact)
	dst = fieldSep(dst, &first)
	dst = append(dst, `"tests":`...)
	if m.Tests == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i, t := range m.Tests {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, t)
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

// AppendBatchVerdict appends the JSON encoding of one NDJSON response
// line, byte-identical to json.Marshal(bv).
//
//sortnets:hotpath
func AppendBatchVerdict(dst []byte, bv *BatchVerdict) []byte {
	first := true
	if bv.ID != "" {
		dst = appendStringField(dst, &first, "id", bv.ID)
	}
	if bv.Verdict != nil {
		dst = fieldSep(dst, &first)
		dst = append(dst, `"verdict":`...)
		dst = AppendVerdict(dst, bv.Verdict)
	}
	if bv.Error != nil {
		dst = fieldSep(dst, &first)
		dst = append(dst, `"error":{"status":`...)
		dst = strconv.AppendInt(dst, int64(bv.Error.Status), 10)
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, bv.Error.Msg)
		if bv.Error.RetryAfter != 0 {
			dst = append(dst, `,"retry_after":`...)
			dst = strconv.AppendInt(dst, int64(bv.Error.RetryAfter), 10)
		}
		dst = append(dst, '}')
	}
	if bv.Source != "" {
		dst = appendStringField(dst, &first, "source", bv.Source)
	}
	if first {
		return append(dst, '{', '}')
	}
	return append(dst, '}')
}

// --- Decoding ------------------------------------------------------------

// jsonCursor walks one JSON document in place. It implements exactly
// the value shapes the wire types need (objects, strings, integers,
// bools, arrays, floats, null) plus a generic skip, with encoding/
// json's semantics: case-insensitive field names, last duplicate
// wins, extra array elements for fixed-size arrays discarded, null
// leaving scalar fields untouched and nilling slices/pointers.
type jsonCursor struct {
	data []byte
	i    int
}

var errJSONSyntax = errors.New("invalid JSON")

func (c *jsonCursor) syntax(what string) error {
	return fmt.Errorf("%w: %s at offset %d", errJSONSyntax, what, c.i)
}

func (c *jsonCursor) skipWS() {
	for c.i < len(c.data) {
		switch c.data[c.i] {
		case ' ', '\t', '\n', '\r':
			c.i++
		default:
			return
		}
	}
}

// peek returns the next non-whitespace byte without consuming it, or
// 0 at end of input.
func (c *jsonCursor) peek() byte {
	c.skipWS()
	if c.i >= len(c.data) {
		return 0
	}
	return c.data[c.i]
}

func (c *jsonCursor) expect(ch byte, what string) error {
	if c.peek() != ch {
		return c.syntax(what)
	}
	c.i++
	return nil
}

// literal consumes the given keyword (true/false/null).
func (c *jsonCursor) literal(kw string) error {
	if len(c.data)-c.i < len(kw) || string(c.data[c.i:c.i+len(kw)]) != kw {
		return c.syntax("literal " + kw)
	}
	c.i += len(kw)
	return nil
}

// maybeNull consumes a null value if present.
func (c *jsonCursor) maybeNull() (bool, error) {
	if c.peek() != 'n' {
		return false, nil
	}
	return true, c.literal("null")
}

// parseString decodes a JSON string value. The unescaped fast path
// returns a direct copy; escapes go through a rune-by-rune rebuild.
func (c *jsonCursor) parseString() (string, error) {
	if err := c.expect('"', "expected string"); err != nil {
		return "", err
	}
	start := c.i
	for c.i < len(c.data) {
		b := c.data[c.i]
		if b == '"' {
			s := string(c.data[start:c.i])
			c.i++
			return s, nil
		}
		if b == '\\' || b < 0x20 {
			break
		}
		if b < utf8.RuneSelf {
			c.i++
			continue
		}
		// Multi-byte sequence: stay on the fast path only while the
		// UTF-8 is valid (invalid sequences get the U+FFFD treatment
		// below, like encoding/json).
		r, size := utf8.DecodeRune(c.data[c.i:])
		if r == utf8.RuneError && size == 1 {
			break
		}
		c.i += size
	}
	// Slow path: rebuild with escapes, rejecting control bytes and
	// replacing invalid UTF-8 with U+FFFD.
	var sb strings.Builder
	sb.Write(c.data[start:c.i])
	for c.i < len(c.data) {
		b := c.data[c.i]
		switch {
		case b == '"':
			c.i++
			return sb.String(), nil
		case b < 0x20:
			return "", c.syntax("control character in string")
		case b >= utf8.RuneSelf:
			r, size := utf8.DecodeRune(c.data[c.i:])
			if r == utf8.RuneError && size == 1 {
				sb.WriteRune(utf8.RuneError)
				c.i++
				continue
			}
			sb.Write(c.data[c.i : c.i+size])
			c.i += size
		case b != '\\':
			sb.WriteByte(b)
			c.i++
		default:
			c.i++
			if c.i >= len(c.data) {
				return "", c.syntax("unterminated escape")
			}
			esc := c.data[c.i]
			c.i++
			switch esc {
			case '"', '\\', '/':
				sb.WriteByte(esc)
			case 'b':
				sb.WriteByte('\b')
			case 'f':
				sb.WriteByte('\f')
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case 't':
				sb.WriteByte('\t')
			case 'u':
				r, err := c.parseHex4()
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(r) {
					if c.i+1 < len(c.data) && c.data[c.i] == '\\' && c.data[c.i+1] == 'u' {
						c.i += 2
						r2, err := c.parseHex4()
						if err != nil {
							return "", err
						}
						if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
							sb.WriteRune(dec)
							continue
						}
						// An invalid pair: both halves decode to U+FFFD,
						// exactly like encoding/json.
						sb.WriteRune(utf8.RuneError)
						sb.WriteRune(utf8.RuneError)
						continue
					}
					sb.WriteRune(utf8.RuneError)
					continue
				}
				sb.WriteRune(r)
			default:
				return "", c.syntax("invalid escape")
			}
		}
	}
	return "", c.syntax("unterminated string")
}

func (c *jsonCursor) parseHex4() (rune, error) {
	if c.i+4 > len(c.data) {
		return 0, c.syntax("short \\u escape")
	}
	var r rune
	for k := 0; k < 4; k++ {
		b := c.data[c.i+k]
		switch {
		case b >= '0' && b <= '9':
			r = r<<4 | rune(b-'0')
		case b >= 'a' && b <= 'f':
			r = r<<4 | rune(b-'a'+10)
		case b >= 'A' && b <= 'F':
			r = r<<4 | rune(b-'A'+10)
		default:
			return 0, c.syntax("invalid \\u escape")
		}
	}
	c.i += 4
	return r, nil
}

// numberEnd scans a syntactically valid JSON number starting at the
// cursor and returns the index just past it (also reporting whether
// it stayed integral).
func (c *jsonCursor) numberEnd() (end int, integral bool, err error) {
	i := c.i
	integral = true
	if i < len(c.data) && c.data[i] == '-' {
		i++
	}
	switch {
	case i < len(c.data) && c.data[i] == '0':
		i++
	case i < len(c.data) && c.data[i] >= '1' && c.data[i] <= '9':
		for i < len(c.data) && c.data[i] >= '0' && c.data[i] <= '9' {
			i++
		}
	default:
		return 0, false, c.syntax("invalid number")
	}
	if i < len(c.data) && c.data[i] == '.' {
		integral = false
		i++
		if i >= len(c.data) || c.data[i] < '0' || c.data[i] > '9' {
			return 0, false, c.syntax("invalid number fraction")
		}
		for i < len(c.data) && c.data[i] >= '0' && c.data[i] <= '9' {
			i++
		}
	}
	if i < len(c.data) && (c.data[i] == 'e' || c.data[i] == 'E') {
		integral = false
		i++
		if i < len(c.data) && (c.data[i] == '+' || c.data[i] == '-') {
			i++
		}
		if i >= len(c.data) || c.data[i] < '0' || c.data[i] > '9' {
			return 0, false, c.syntax("invalid number exponent")
		}
		for i < len(c.data) && c.data[i] >= '0' && c.data[i] <= '9' {
			i++
		}
	}
	return i, integral, nil
}

// parseInt decodes an integer value into an int, rejecting fractions
// and exponents exactly like encoding/json unmarshalling into an int
// field (valid JSON numbers with a '.' or 'e' are a type error
// there; both are plain errors here).
func (c *jsonCursor) parseInt() (int, error) {
	c.skipWS()
	end, integral, err := c.numberEnd()
	if err != nil {
		return 0, err
	}
	if !integral {
		return 0, c.syntax("number is not an integer")
	}
	neg := false
	i := c.i
	if c.data[i] == '-' {
		neg = true
		i++
	}
	var n int64
	for ; i < end; i++ {
		d := int64(c.data[i] - '0')
		if n > (math.MaxInt64-d)/10 {
			return 0, c.syntax("integer overflow")
		}
		n = n*10 + d
	}
	c.i = end
	if neg {
		n = -n
	}
	if n < math.MinInt || n > math.MaxInt {
		return 0, c.syntax("integer overflow")
	}
	return int(n), nil
}

// parseFloat decodes any JSON number as a float64.
func (c *jsonCursor) parseFloat() (float64, error) {
	c.skipWS()
	end, _, err := c.numberEnd()
	if err != nil {
		return 0, err
	}
	f, perr := strconv.ParseFloat(string(c.data[c.i:end]), 64)
	if perr != nil {
		return 0, c.syntax("invalid number")
	}
	c.i = end
	return f, nil
}

func (c *jsonCursor) parseBool() (bool, error) {
	switch c.peek() {
	case 't':
		return true, c.literal("true")
	case 'f':
		return false, c.literal("false")
	}
	return false, c.syntax("expected boolean")
}

// skipValue consumes any JSON value.
func (c *jsonCursor) skipValue() error {
	switch c.peek() {
	case '"':
		_, err := c.parseString()
		return err
	case '{':
		c.i++
		if c.peek() == '}' {
			c.i++
			return nil
		}
		for {
			if _, err := c.parseString(); err != nil {
				return err
			}
			if err := c.expect(':', "expected ':'"); err != nil {
				return err
			}
			if err := c.skipValue(); err != nil {
				return err
			}
			switch c.peek() {
			case ',':
				c.i++
			case '}':
				c.i++
				return nil
			default:
				return c.syntax("expected ',' or '}'")
			}
		}
	case '[':
		c.i++
		if c.peek() == ']' {
			c.i++
			return nil
		}
		for {
			if err := c.skipValue(); err != nil {
				return err
			}
			switch c.peek() {
			case ',':
				c.i++
			case ']':
				c.i++
				return nil
			default:
				return c.syntax("expected ',' or ']'")
			}
		}
	case 't':
		return c.literal("true")
	case 'f':
		return c.literal("false")
	case 'n':
		return c.literal("null")
	case '-', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9':
		end, _, err := c.numberEnd()
		if err != nil {
			return err
		}
		c.i = end
		return nil
	}
	return c.syntax("expected value")
}

// parseObject walks one JSON object, calling field for every key
// (escape-decoded). field handles unknown keys itself (error for the
// strict request form, skipValue for the lenient verdict forms).
// A null instead of an object reports null=true and touches nothing.
func (c *jsonCursor) parseObject(field func(key string) error) (null bool, err error) {
	if isNull, err := c.maybeNull(); err != nil || isNull {
		return isNull, err
	}
	if err := c.expect('{', "expected object"); err != nil {
		return false, err
	}
	if c.peek() == '}' {
		c.i++
		return false, nil
	}
	for {
		key, err := c.parseString()
		if err != nil {
			return false, err
		}
		if err := c.expect(':', "expected ':'"); err != nil {
			return false, err
		}
		if err := field(key); err != nil {
			return false, err
		}
		switch c.peek() {
		case ',':
			c.i++
		case '}':
			c.i++
			return false, nil
		default:
			return false, c.syntax("expected ',' or '}'")
		}
	}
}

// stringInto / intInto / boolInto decode one field value with
// encoding/json's null semantics (null leaves the target untouched).
func (c *jsonCursor) stringInto(dst *string) error {
	if null, err := c.maybeNull(); err != nil || null {
		return err
	}
	s, err := c.parseString()
	if err != nil {
		return err
	}
	*dst = s
	return nil
}

func (c *jsonCursor) intInto(dst *int) error {
	if null, err := c.maybeNull(); err != nil || null {
		return err
	}
	n, err := c.parseInt()
	if err != nil {
		return err
	}
	*dst = n
	return nil
}

func (c *jsonCursor) boolInto(dst *bool) error {
	if null, err := c.maybeNull(); err != nil || null {
		return err
	}
	b, err := c.parseBool()
	if err != nil {
		return err
	}
	*dst = b
	return nil
}

func (c *jsonCursor) floatInto(dst *float64) error {
	if null, err := c.maybeNull(); err != nil || null {
		return err
	}
	f, err := c.parseFloat()
	if err != nil {
		return err
	}
	*dst = f
	return nil
}

// pairsInto decodes a [][2]int field (null → nil). Fixed-size array
// semantics match encoding/json: extra elements are parsed and
// discarded, missing ones stay zero.
func (c *jsonCursor) pairsInto(dst *[][2]int) error {
	if null, err := c.maybeNull(); err != nil {
		return err
	} else if null {
		*dst = nil
		return nil
	}
	if err := c.expect('[', "expected array"); err != nil {
		return err
	}
	out := (*dst)[:0]
	if out == nil {
		out = [][2]int{}
	}
	if c.peek() == ']' {
		c.i++
		*dst = out
		return nil
	}
	for {
		var pair [2]int
		if null, err := c.maybeNull(); err != nil {
			return err
		} else if !null {
			if err := c.expect('[', "expected pair"); err != nil {
				return err
			}
			if c.peek() != ']' {
				for idx := 0; ; idx++ {
					if idx < 2 {
						if err := c.intInto(&pair[idx]); err != nil {
							return err
						}
					} else if err := c.skipValue(); err != nil {
						return err
					}
					if c.peek() != ',' {
						break
					}
					c.i++
				}
			}
			if err := c.expect(']', "expected ']'"); err != nil {
				return err
			}
		}
		out = append(out, pair)
		switch c.peek() {
		case ',':
			c.i++
		case ']':
			c.i++
			*dst = out
			return nil
		default:
			return c.syntax("expected ',' or ']'")
		}
	}
}

// stringsInto decodes a []string field (null → nil).
func (c *jsonCursor) stringsInto(dst *[]string) error {
	if null, err := c.maybeNull(); err != nil {
		return err
	} else if null {
		*dst = nil
		return nil
	}
	if err := c.expect('[', "expected array"); err != nil {
		return err
	}
	out := []string{}
	if c.peek() == ']' {
		c.i++
		*dst = out
		return nil
	}
	for {
		var s string
		if err := c.stringInto(&s); err != nil {
			return err
		}
		out = append(out, s)
		switch c.peek() {
		case ',':
			c.i++
		case ']':
			c.i++
			*dst = out
			return nil
		default:
			return c.syntax("expected ',' or ']'")
		}
	}
}

// UnmarshalRequestLine decodes one NDJSON request line into r with
// the strict semantics of the historical json.Decoder +
// DisallowUnknownFields path: unknown fields are an error, as is any
// non-whitespace trailing data after the JSON value. r is fully
// overwritten (reset first), so a pooled Request can be reused.
func UnmarshalRequestLine(data []byte, r *Request) error {
	*r = Request{}
	c := jsonCursor{data: data}
	_, err := c.parseObject(func(key string) error {
		switch {
		case strings.EqualFold(key, "id"):
			return c.stringInto(&r.ID)
		case strings.EqualFold(key, "op"):
			return c.stringInto(&r.Op)
		case strings.EqualFold(key, "network"):
			return c.stringInto(&r.Network)
		case strings.EqualFold(key, "lines"):
			return c.intInto(&r.Lines)
		case strings.EqualFold(key, "comparators"):
			return c.pairsInto(&r.Comparators)
		case strings.EqualFold(key, "property"):
			return c.stringInto(&r.Property)
		case strings.EqualFold(key, "k"):
			return c.intInto(&r.K)
		case strings.EqualFold(key, "exhaustive"):
			return c.boolInto(&r.Exhaustive)
		case strings.EqualFold(key, "mode"):
			return c.stringInto(&r.Mode)
		case strings.EqualFold(key, "exact"):
			return c.boolInto(&r.Exact)
		}
		return fmt.Errorf("json: unknown field %q", key)
	})
	if err != nil {
		return err
	}
	if c.peek() != 0 {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// UnmarshalBatchVerdictLine decodes one NDJSON response line into bv
// with json.Unmarshal's lenient semantics (unknown fields skipped).
// bv is fully overwritten; nested Verdict/RequestError values are
// freshly allocated, so the result does not alias pooled memory.
func UnmarshalBatchVerdictLine(data []byte, bv *BatchVerdict) error {
	*bv = BatchVerdict{}
	c := jsonCursor{data: data}
	_, err := c.parseObject(func(key string) error {
		switch {
		case strings.EqualFold(key, "id"):
			return c.stringInto(&bv.ID)
		case strings.EqualFold(key, "verdict"):
			v := bv.Verdict
			if v == nil {
				v = &Verdict{}
			}
			null, err := c.verdictInto(v)
			if err != nil {
				return err
			}
			if null {
				bv.Verdict = nil
			} else {
				bv.Verdict = v
			}
			return nil
		case strings.EqualFold(key, "error"):
			e := bv.Error
			if e == nil {
				e = &RequestError{}
			}
			null, err := c.parseObject(func(key string) error {
				switch {
				case strings.EqualFold(key, "status"):
					return c.intInto(&e.Status)
				case strings.EqualFold(key, "error"):
					return c.stringInto(&e.Msg)
				case strings.EqualFold(key, "retry_after"):
					return c.intInto(&e.RetryAfter)
				}
				return c.skipValue()
			})
			if err != nil {
				return err
			}
			if null {
				bv.Error = nil
			} else {
				bv.Error = e
			}
			return nil
		case strings.EqualFold(key, "source"):
			return c.stringInto(&bv.Source)
		}
		return c.skipValue()
	})
	if err != nil {
		return err
	}
	if c.peek() != 0 {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

func (c *jsonCursor) verdictInto(v *Verdict) (null bool, err error) {
	return c.parseObject(func(key string) error {
		switch {
		case strings.EqualFold(key, "id"):
			return c.stringInto(&v.ID)
		case strings.EqualFold(key, "op"):
			return c.stringInto(&v.Op)
		case strings.EqualFold(key, "digest"):
			return c.stringInto(&v.Digest)
		case strings.EqualFold(key, "property"):
			return c.stringInto(&v.Property)
		case strings.EqualFold(key, "check"):
			cv := v.Check
			if cv == nil {
				cv = &CheckVerdict{}
			}
			null, err := c.parseObject(func(key string) error {
				switch {
				case strings.EqualFold(key, "exhaustive"):
					return c.boolInto(&cv.Exhaustive)
				case strings.EqualFold(key, "holds"):
					return c.boolInto(&cv.Holds)
				case strings.EqualFold(key, "testsRun"):
					return c.intInto(&cv.TestsRun)
				case strings.EqualFold(key, "counterexample"):
					return c.stringInto(&cv.Counterexample)
				case strings.EqualFold(key, "output"):
					return c.stringInto(&cv.Output)
				}
				return c.skipValue()
			})
			if err != nil {
				return err
			}
			if null {
				v.Check = nil
			} else {
				v.Check = cv
			}
			return nil
		case strings.EqualFold(key, "faults"):
			fv := v.Faults
			if fv == nil {
				fv = &FaultsVerdict{}
			}
			null, err := c.parseObject(func(key string) error {
				switch {
				case strings.EqualFold(key, "mode"):
					return c.stringInto(&fv.Mode)
				case strings.EqualFold(key, "faults"):
					return c.intInto(&fv.Faults)
				case strings.EqualFold(key, "detectable"):
					return c.intInto(&fv.Detectable)
				case strings.EqualFold(key, "detected"):
					return c.intInto(&fv.Detected)
				case strings.EqualFold(key, "coverage"):
					return c.floatInto(&fv.Coverage)
				}
				return c.skipValue()
			})
			if err != nil {
				return err
			}
			if null {
				v.Faults = nil
			} else {
				v.Faults = fv
			}
			return nil
		case strings.EqualFold(key, "minset"):
			mv := v.Minset
			if mv == nil {
				mv = &MinsetVerdict{}
			}
			null, err := c.parseObject(func(key string) error {
				switch {
				case strings.EqualFold(key, "mode"):
					return c.stringInto(&mv.Mode)
				case strings.EqualFold(key, "faults"):
					return c.intInto(&mv.Faults)
				case strings.EqualFold(key, "detectable"):
					return c.intInto(&mv.Detectable)
				case strings.EqualFold(key, "detected"):
					return c.intInto(&mv.Detected)
				case strings.EqualFold(key, "fullTests"):
					return c.intInto(&mv.FullTests)
				case strings.EqualFold(key, "size"):
					return c.intInto(&mv.Size)
				case strings.EqualFold(key, "exact"):
					return c.boolInto(&mv.Exact)
				case strings.EqualFold(key, "tests"):
					return c.stringsInto(&mv.Tests)
				}
				return c.skipValue()
			})
			if err != nil {
				return err
			}
			if null {
				v.Minset = nil
			} else {
				v.Minset = mv
			}
			return nil
		}
		return c.skipValue()
	})
}
