package sortnets

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

const sessSorter4 = "n=4: [1,2][3,4][1,3][2,4][2,3]"

func sessCancelled() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestDoCancelledPromptlyEveryPath is the acceptance criterion:
// Session.Do with an already-cancelled context returns promptly
// (< 50ms) on every engine path — minimal-test batch, width-12
// exhaustive GroundTruth sweep, fault sweep, and the exact
// hitting-set solve — and the session stays fully usable afterwards.
func TestDoCancelledPromptlyEveryPath(t *testing.T) {
	sess := NewSession()
	defer sess.Close()
	wide12 := BatcherSorter(12).Format()
	reqs := []Request{
		{Op: OpVerify, Network: sessSorter4},
		{Op: OpVerify, Network: wide12, Exhaustive: true}, // width-12 GroundTruth sweep
		{Op: OpFaults, Network: wide12},
		{Op: OpMinset, Network: sessSorter4, Exact: true}, // exact-search solve
	}
	for _, req := range reqs {
		before := runtime.NumGoroutine()
		start := time.Now()
		_, err := sess.Do(sessCancelled(), req)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("op %s: want context.Canceled, got %v", req.Op, err)
		}
		if d := time.Since(start); d > 50*time.Millisecond {
			t.Errorf("op %s: cancelled Do took %v, want < 50ms", req.Op, d)
		}
		waitGoroutines(t, int64(before+sess.Workers()))
	}
	// The same requests must still compute under a live context.
	for _, req := range reqs {
		v, err := sess.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("op %s after cancellation: %v", req.Op, err)
		}
		if v.Digest == "" || v.Source == "" {
			t.Errorf("op %s: degenerate verdict %+v", req.Op, v)
		}
	}
	st := sess.Stats()
	var canceled int64
	for _, op := range st.Ops {
		canceled += op.Canceled
	}
	if canceled != int64(len(reqs)) {
		t.Errorf("canceled counter %d, want %d: %+v", canceled, len(reqs), st.Ops)
	}
}

func waitGoroutines(t *testing.T, most int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if int64(runtime.NumGoroutine()) <= most {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines: %d, want ≤ %d", runtime.NumGoroutine(), most)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDoDeadlineMidCompute: a deadline expiring inside a heavy
// exhaustive sweep stops the engine within a block.
func TestDoDeadlineMidCompute(t *testing.T) {
	sess := NewSession(WithMaxLines(30))
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := sess.Do(ctx, Request{Network: BatcherSorter(26).Format(), Exhaustive: true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("deadline honored only after %v", d)
	}
}

// TestDoCacheAndSources: miss → hit, byte-identical sections, and
// canonical sharing between different writings of one circuit.
func TestDoCacheAndSources(t *testing.T) {
	sess := NewSession()
	defer sess.Close()
	ctx := context.Background()
	v1, err := sess.Do(ctx, Request{Network: sessSorter4})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Source != "miss" || v1.Check == nil || !v1.Check.Holds || v1.Check.TestsRun != 11 {
		t.Fatalf("first verdict: %+v (source %s)", v1.Check, v1.Source)
	}
	v2, err := sess.Do(ctx, Request{Network: "n=4: [3,4][1,2][1,3][2,4][2,3]"})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Source != "hit" || v2.Digest != v1.Digest {
		t.Fatalf("reordered writing not shared: source %s, digests %s vs %s", v2.Source, v2.Digest, v1.Digest)
	}
	b1, _ := MarshalVerdict(v1)
	b2, _ := MarshalVerdict(v2)
	if string(b1) != string(b2) {
		t.Fatalf("cached verdict not byte-identical:\n%s\n%s", b1, b2)
	}
}

// TestConveniencesMatchLegacyFacade: the Session conveniences are the
// engine behind the plain facade functions — results must agree
// exactly.
func TestConveniencesMatchLegacyFacade(t *testing.T) {
	sess := NewSession()
	defer sess.Close()
	ctx := context.Background()
	w := MustParseNetwork(sessSorter4)
	p := SorterProp{N: 4}

	r, err := sess.Check(ctx, w, p)
	if err != nil || !r.Holds || r.TestsRun != 11 {
		t.Fatalf("Check: %+v, %v", r, err)
	}
	g, err := sess.GroundTruth(ctx, w, p)
	if err != nil || !g.Holds || g.TestsRun != 16 {
		t.Fatalf("GroundTruth: %+v, %v", g, err)
	}
	pr, err := sess.CheckPerms(ctx, w, p)
	if err != nil || !pr.Holds {
		t.Fatalf("CheckPerms: %+v, %v", pr, err)
	}
	rep, err := sess.FaultCoverage(ctx, w)
	if err != nil || rep.Faults == 0 {
		t.Fatalf("FaultCoverage: %+v, %v", rep, err)
	}
	if legacy := FaultCoverage(w); rep != legacy {
		t.Errorf("FaultCoverage diverges from facade: %+v vs %+v", rep, legacy)
	}
	picks, err := sess.MinSet(ctx, w)
	if err != nil || len(picks) == 0 {
		t.Fatalf("MinSet: %d picks, %v", len(picks), err)
	}
	m := BatcherMerger(256)
	wr, err := sess.Wide(ctx, m, MergerProp{N: 256}, 0)
	if err != nil || !wr.Holds {
		t.Fatalf("Wide: %+v, %v", wr, err)
	}
	// A failing check through the cache keeps its counterexample.
	bad := MustParseNetwork("n=4: [1,2][3,4]")
	for i := 0; i < 2; i++ { // second round is the cached path
		rb, err := sess.Check(ctx, bad, p)
		if err != nil || rb.Holds || rb.Counterexample.String() == "" {
			t.Fatalf("round %d: failing check %+v, %v", i, rb, err)
		}
		if legacy := Check(bad, p); rb != legacy {
			t.Fatalf("round %d: cached result diverges from facade: %+v vs %+v", i, rb, legacy)
		}
	}
}

// TestConvenienceCancellation: conveniences observe the context too.
func TestConvenienceCancellation(t *testing.T) {
	sess := NewSession()
	defer sess.Close()
	w := BatcherSorter(30)
	start := time.Now()
	_, err := sess.GroundTruthParallel(sessCancelled(), w, SorterProp{N: 30}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Errorf("cancelled convenience took %v", d)
	}
	if _, err := sess.CheckPerms(sessCancelled(), BatcherSorter(10), SorterProp{N: 10}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CheckPerms: want context.Canceled, got %v", err)
	}
	if _, err := sess.Wide(sessCancelled(), BatcherMerger(256), MergerProp{N: 256}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wide: want context.Canceled, got %v", err)
	}
}

// TestSessionDoerSwap: Session satisfies Doer (the client package
// asserts the same for its Client), so the two are interchangeable.
func TestSessionDoerSwap(t *testing.T) {
	var d Doer = NewSession()
	defer d.(*Session).Close()
	v, err := d.Do(context.Background(), Request{Network: sessSorter4})
	if err != nil || v.Check == nil || !v.Check.Holds {
		t.Fatalf("Doer: %+v, %v", v, err)
	}
}

// TestTestStreamOverride: WithTestStream replaces the minimal family
// and keys the cache by the stream tag.
func TestTestStreamOverride(t *testing.T) {
	// A stream of just the all-ones-descending counterexample 1010:
	// the override must change TestsRun and still find the failure.
	sess := NewSession(WithTestStream("single", func(p Property) VecIterator {
		return SliceIterator([]Vec{MustVec("1010")})
	}))
	defer sess.Close()
	v, err := sess.Do(context.Background(), Request{Network: "n=4: [1,2][3,4]"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Check.Holds || v.Check.TestsRun != 1 || v.Check.Counterexample != "1010" {
		t.Fatalf("override not applied: %+v", v.Check)
	}
}

// TestUncacheableRequestsNeverCoalesce: with an unnamed stream
// override every verdict is uncacheable — two concurrent DIFFERENT
// requests must still compute independently, never share an
// in-flight result.
func TestUncacheableRequestsNeverCoalesce(t *testing.T) {
	started := make(chan struct{}, 2)
	gate := make(chan struct{})
	sess := NewSession(
		WithWorkers(2),
		WithTestStream("", func(p Property) VecIterator { return SliceIterator([]Vec{MustVec("1010")}) }),
		WithComputeHook(func() { started <- struct{}{}; <-gate }),
	)
	defer sess.Close()

	nets := []string{"n=4: [1,2][3,4]", "n=4: [1,3][2,4]"}
	verdicts := make(chan *Verdict, 2)
	for _, net := range nets {
		go func(net string) {
			v, err := sess.Do(context.Background(), Request{Network: net})
			if err != nil {
				t.Errorf("%s: %v", net, err)
				verdicts <- nil
				return
			}
			verdicts <- v
		}(net)
	}
	// Both computations must START concurrently: a coalesced second
	// request would subscribe to the first instead, and this wait
	// would time out.
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("second uncacheable request coalesced instead of computing")
		}
	}
	close(gate)
	digests := map[string]bool{}
	for i := 0; i < 2; i++ {
		if v := <-verdicts; v != nil {
			digests[v.Digest] = true
		}
	}
	if len(digests) != 2 {
		t.Fatalf("distinct requests shared a verdict: digests %v", digests)
	}
}

// TestUnknownOpRejected: Do validates the op before any work.
func TestUnknownOpRejected(t *testing.T) {
	sess := NewSession()
	defer sess.Close()
	_, err := sess.Do(context.Background(), Request{Op: "conjure", Network: sessSorter4})
	var re *RequestError
	if !errors.As(err, &re) || re.Status != 400 {
		t.Fatalf("want *RequestError 400, got %v", err)
	}
	if u := sess.Stats().Ops["unknown"]; u.Requests != 1 || u.Errors != 1 {
		t.Errorf("unknown-op counters %+v, want requests=errors=1", u)
	}
}
