package sortnets

import (
	"container/list"
	"sync"
)

// lru is a mutex-guarded least-recently-used cache with a fixed entry
// capacity. A Session keeps two: the verdict cache (immutable
// *Verdict / conveniences' typed results, shared by the in-process
// and HTTP paths) and the compiled-program cache (one eval.Program
// per canonical digest, shared across operations and properties).
type lru[V any] struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used
	entries   map[string]*list.Element
	evictions int64
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[V]{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached value and refreshes its recency.
func (c *lru[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Add inserts or refreshes key, evicting the least recently used
// entry when the cache is full.
func (c *lru[V]) Add(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry[V]).key)
		c.evictions++
	}
	c.entries[key] = c.order.PushFront(&lruEntry[V]{key: key, val: val})
}

// Len returns the current entry count.
func (c *lru[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Evictions returns the lifetime eviction count.
func (c *lru[V]) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Cap returns the configured capacity.
func (c *lru[V]) Cap() int { return c.capacity }
