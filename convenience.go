package sortnets

import (
	"context"
	"fmt"

	"sortnets/internal/bitvec"
	"sortnets/internal/eval"
	"sortnets/internal/faults"
	"sortnets/internal/verify"
)

// Typed conveniences: the library-side face of the Session for
// callers holding real *Network values. They share Do's caches —
// verdicts land under the same (operation, digest, property) keys
// the HTTP path uses, and programs under the same digests — but
// compute on the caller's goroutine (no pool hop, no coalescing) and
// enforce no line caps: this is a trusted surface, so a mismatched
// property still panics exactly like the historical facade.
//
// Determinism and caching: Check, GroundTruth, CheckPerms,
// FaultCoverage and MinSet run deterministic single-worker engines
// and are verdict-cached (built-in properties only — caller-defined
// Property implementations are computed fresh, since their names are
// not canonical cache keys). The *Parallel and Wide variants take an
// explicit worker count under the one rule (0 = automatic, 1 =
// sequential, k = exactly k) and are never verdict-cached, because a
// pooled counterexample identity is schedule-dependent.

// Check decides the property with its minimal binary test set on a
// cached compiled program, deterministically (stream-order
// counterexample). The error is non-nil only when ctx is cancelled.
func (s *Session) Check(ctx context.Context, w *Network, p Property) (Result, error) {
	_, digest, prog := s.resolveNetwork(w)
	name, builtin := wireProperty(p)
	if !builtin {
		return s.checkProgram(ctx, prog, p, false)
	}
	key := s.verifyKey(digest, name, false)
	v, err := s.cachedInline(ctx, key, func(cctx context.Context) (any, error) {
		r, err := s.checkProgram(cctx, prog, p, false)
		if err != nil {
			return nil, err
		}
		return checkVerdict(digest, name, false, r), nil
	})
	if err != nil {
		return Result{}, err
	}
	return resultFrom(v.(*Verdict)), nil
}

// CheckMany decides ONE property for a whole fleet of networks in a
// single shared engine pass — the library face of the batch-first
// model. The property's minimal test set is enumerated and transposed
// once per 64-lane block for every still-undecided program
// (eval.RunMany), instead of once per network; cache hits and
// canonical duplicates within the fleet skip the pass entirely. Each
// Result is identical to what Check would return for that network.
// Every network must have p.Lines() lines (≤ 64 — beyond that only
// the polynomial Wide families are feasible anyway).
func (s *Session) CheckMany(ctx context.Context, ws []*Network, p Property) ([]Result, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	name, builtin := wireProperty(p)
	results := make([]Result, len(ws))
	// pending is one distinct circuit awaiting the shared pass, with
	// every fleet index it answers (canonical duplicates collapse).
	type pending struct {
		key    string
		digest string
		prog   *eval.Program
		idxs   []int
	}
	var order []*pending
	byKey := make(map[string]*pending)
	for i, w := range ws {
		if w.N != p.Lines() {
			panic(fmt.Sprintf("sortnets: network has %d lines, property wants %d", w.N, p.Lines()))
		}
		_, digest, prog := s.resolveNetwork(w)
		key := ""
		if builtin {
			key = s.verifyKey(digest, name, false)
		}
		if key != "" {
			if s.results != nil {
				if v, ok := s.results.Get(key); ok {
					results[i] = resultFrom(v.(*Verdict))
					continue
				}
			}
			if pe, ok := byKey[key]; ok {
				pe.idxs = append(pe.idxs, i)
				continue
			}
		}
		pe := &pending{key: key, digest: digest, prog: prog, idxs: []int{i}}
		if key != "" {
			byKey[key] = pe
		}
		order = append(order, pe)
	}
	if len(order) == 0 {
		return results, nil
	}
	progs := make([]*eval.Program, len(order))
	for i, pe := range order {
		progs[i] = pe.prog
	}
	stream := p.BinaryTests()
	if s.stream != nil {
		stream = s.stream(p)
	}
	evs, err := eval.RunManyCtx(ctx, progs, stream, verify.JudgeFor(p))
	if err != nil {
		return nil, err
	}
	for i, pe := range order {
		r := Result{Holds: evs[i].Holds, TestsRun: evs[i].TestsRun, Counterexample: evs[i].In, Output: evs[i].Out}
		if pe.key != "" && s.results != nil {
			s.results.Add(pe.key, checkVerdict(pe.digest, name, false, r))
		}
		for _, idx := range pe.idxs {
			results[idx] = r
		}
	}
	return results, nil
}

// GroundTruth decides the property against the entire binary
// universe — the exhaustive baseline the minimal test sets are
// measured against — deterministically, on a cached program.
func (s *Session) GroundTruth(ctx context.Context, w *Network, p Property) (Result, error) {
	_, digest, prog := s.resolveNetwork(w)
	name, builtin := wireProperty(p)
	if !builtin {
		return verify.GroundTruthProgramCtx(ctx, prog, p)
	}
	key := s.verifyKey(digest, name, true)
	v, err := s.cachedInline(ctx, key, func(cctx context.Context) (any, error) {
		r, err := verify.GroundTruthProgramCtx(cctx, prog, p)
		if err != nil {
			return nil, err
		}
		return checkVerdict(digest, name, true, r), nil
	})
	if err != nil {
		return Result{}, err
	}
	return resultFrom(v.(*Verdict)), nil
}

// CheckParallel is Check with an explicit engine worker count (0 =
// automatic, 1 = sequential, k > 1 = exactly k). Uncached: with a
// pool the first failure found wins, so the counterexample identity
// is schedule-dependent.
func (s *Session) CheckParallel(ctx context.Context, w *Network, p Property, workers int) (Result, error) {
	return verify.VerdictCtx(ctx, w, p, workers)
}

// GroundTruthParallel is GroundTruth with an explicit engine worker
// count (0 = automatic). Uncached, like CheckParallel.
func (s *Session) GroundTruthParallel(ctx context.Context, w *Network, p Property, workers int) (Result, error) {
	return verify.GroundTruthCtx(ctx, w, p, workers)
}

// CheckPerms decides the property with its minimal permutation test
// set (deterministic, cached for built-in properties).
func (s *Session) CheckPerms(ctx context.Context, w *Network, p Property) (PermResult, error) {
	c, digest, _ := s.resolveNetwork(w)
	name, builtin := wireProperty(p)
	if !builtin || s.stream != nil {
		return verify.VerdictPermsCtx(ctx, w, p)
	}
	key := fmt.Sprintf("perms|%s|%s", digest, name)
	v, err := s.cachedInline(ctx, key, func(cctx context.Context) (any, error) {
		return verify.VerdictPermsCtx(cctx, c, p)
	})
	if err != nil {
		return PermResult{}, err
	}
	// Deep-copy the mutable fields on the way out: the cached entry is
	// shared and must stay immutable (the PR 2 copy-on-return rule for
	// memoized families).
	r := v.(PermResult)
	r.Counterexample = append(Perm(nil), r.Counterexample...)
	r.Output = append([]int(nil), r.Output...)
	return r, nil
}

// Wide certifies the property at widths beyond 64 lines with the
// paper's polynomial test sets, on a cached compiled program. p must
// be a MergerProp or SelectorProp (the regimes with polynomial
// families); workers follows the one rule (0 = automatic).
func (s *Session) Wide(ctx context.Context, w *Network, p Property, workers int) (WideResult, error) {
	_, _, prog := s.resolveNetwork(w)
	switch q := p.(type) {
	case verify.Merger:
		if w.N != q.N {
			panic(fmt.Sprintf("sortnets: network has %d lines, property wants %d", w.N, q.N))
		}
		return verify.VerdictMergerWideProgramCtx(ctx, prog, workers)
	case verify.Selector:
		if w.N != q.N {
			panic(fmt.Sprintf("sortnets: network has %d lines, property wants %d", w.N, q.N))
		}
		return verify.VerdictSelectorWideProgramCtx(ctx, prog, q.K, workers)
	}
	panic(fmt.Sprintf("sortnets: Wide needs a merger or selector property, got %s", p.Name()))
}

// FaultCoverage measures how many detectable faults the sorter's
// minimal test set exposes under the session's fault-detection mode.
// Unlike Do (which canonicalizes first), the fault conveniences
// evaluate the network EXACTLY as written — fault-injected circuits
// (bridges in particular) are not invariant under within-layer
// reordering, so the cache key is the exact text form, not the
// canonical digest. The healthy golden program is still shared
// through the digest-keyed program cache (it is function-level).
func (s *Session) FaultCoverage(ctx context.Context, w *Network) (FaultReport, error) {
	_, _, golden := s.resolveNetwork(w)
	p := verify.Sorter{N: w.N}
	mode := s.faultMode
	key := fmt.Sprintf("faults|exact:%s|%s|%s", w.Format(), p.Name(), mode)
	v, err := s.cachedInline(ctx, key, func(cctx context.Context) (any, error) {
		rep, err := faults.MeasureCtx(cctx, w, golden, faults.Enumerate(w), p.BinaryTests, mode)
		if err != nil {
			return nil, err
		}
		return rep, nil
	})
	if err != nil {
		return FaultReport{}, err
	}
	return v.(FaultReport), nil
}

// MinSet greedily selects a small subset of the minimal sorter test
// set that still detects every fault the full set detects — stuck-at
// test-set selection on the same machinery that verifies test sets.
// Like FaultCoverage, it evaluates the network exactly as written.
func (s *Session) MinSet(ctx context.Context, w *Network) ([]Vec, error) {
	_, _, golden := s.resolveNetwork(w)
	p := verify.Sorter{N: w.N}
	mode := s.faultMode
	key := fmt.Sprintf("minset|exact:%s|%s|%s", w.Format(), p.Name(), mode)
	v, err := s.cachedInline(ctx, key, func(cctx context.Context) (any, error) {
		m, err := faults.DetectionMatrixCtx(cctx, w, golden, faults.Enumerate(w), p.BinaryTests, mode)
		if err != nil {
			return nil, err
		}
		picks := m.MinimalDetectingSet()
		out := make([]Vec, len(picks))
		for i, t := range picks {
			out[i] = m.Tests[t]
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	// Fresh slice per call: callers may reorder or overwrite their
	// copy without poisoning the shared cache entry.
	return append([]Vec(nil), v.([]Vec)...), nil
}

// cachedInline is the convenience-path cache pipeline: same keys and
// entries as Do's, but computed on the caller's goroutine (no pool,
// no coalescing). An empty key computes fresh.
func (s *Session) cachedInline(ctx context.Context, key string, compute func(context.Context) (any, error)) (any, error) {
	if s.results != nil && key != "" {
		if v, ok := s.results.Get(key); ok {
			return v, nil
		}
	}
	v, err := compute(ctx)
	if err != nil {
		return nil, err
	}
	if s.results != nil && key != "" {
		s.results.Add(key, v)
	}
	return v, nil
}

// resultFrom reconstructs the typed Result from a (possibly cached)
// verify Verdict — the string forms are lossless for n ≤ 64.
func resultFrom(v *Verdict) Result {
	cv := v.Check
	r := Result{Holds: cv.Holds, TestsRun: cv.TestsRun}
	if !cv.Holds {
		r.Counterexample = bitvec.MustFromString(cv.Counterexample)
		r.Output = bitvec.MustFromString(cv.Output)
	}
	return r
}
